/**
 * @file
 * Pruned grammar generation for the code synthesizer (paper §4.3).
 *
 * The grammar for one synthesis query is the set of AutoLLVM
 * instruction *variants* (class + concrete parameter assignment, i.e.
 * individual target instructions) the enumerative CEGIS search may
 * use. Three pruning heuristics shape it, each independently
 * toggleable for the Table 5 sensitivity study:
 *
 *  - BVS (bitvector-based screening, §4.3 a+b): drop whole classes
 *    whose bitvector operations cannot appear in the input expression
 *    and whose widths the expression never uses; drop variants whose
 *    element size is below the expression's minimum (information
 *    loss).
 *  - SBOS (score-based operation selection, §4.3 c): rank the
 *    surviving variants of each class by similarity to the input
 *    expression and keep the top k.
 *  - Swizzle inclusion (§4.4): pure data-movement classes
 *    (interleave, deinterleave, concatenate-halves, rotate) are
 *    always included, independent of k.
 *
 * All widths in the grammar are *scaled* by the lane-scaling factor
 * (§4.2): parameters with Count or RegWidth roles are divided by the
 * scale while element widths stay fixed.
 */
#ifndef HYDRIDE_SYNTHESIS_GRAMMAR_H
#define HYDRIDE_SYNTHESIS_GRAMMAR_H

#include <vector>

#include "autollvm/dict.h"
#include "halide/hexpr.h"

namespace hydride {

/** One usable instruction in a synthesis grammar. */
struct GrammarOp
{
    AutoOpVariant variant;
    /** Parameter values divided down by the lane scale. */
    std::vector<int64_t> scaled_params;
    std::vector<int> arg_widths; ///< Scaled input widths.
    int out_width = 0;           ///< Scaled output width.
    int elem_width = 0;          ///< Output element width (unscaled).
    int latency = 1;
    int n_imms = 0;
    double score = 0.0;
};

/** Grammar-generation knobs (Table 5 rows). */
struct GrammarOptions
{
    bool bvs = true;
    bool sbos = true;
    int k = 4;
    bool include_swizzles = true;
    /** If nonzero, globally cap to the best-scoring N variants
     *  (the "Top 50 instructions" ablation row). */
    int max_ops = 0;
};

/** The generated grammar. */
struct Grammar
{
    std::vector<GrammarOp> ops;
    /** Immediate candidates harvested from the input expression. */
    std::vector<int64_t> imm_pool;
};

/** Build the pruned grammar for `window` on `isa` at `scale`. */
Grammar buildGrammar(const AutoLLVMDict &dict, const std::string &isa,
                     const HExprPtr &window, int scale,
                     const GrammarOptions &options);

/** True if an equivalence class is pure data movement (swizzle). */
bool isSwizzleClass(const EquivalenceClass &cls);

/** Scale a member's parameters down by `scale`; false if illegal. */
bool scaleParams(const EquivalenceClass &cls,
                 const std::vector<int64_t> &params, int scale,
                 std::vector<int64_t> &scaled);

} // namespace hydride

#endif // HYDRIDE_SYNTHESIS_GRAMMAR_H
