/**
 * @file
 * The end-to-end Hydride compiler: Halide kernel -> per-window
 * synthesis (with memoization) -> AutoLLVM IR -> 1-1 lowering to
 * target instructions, with macro expansion as the fallback for
 * windows synthesis cannot handle within its budget (mirroring how
 * the paper's system bounds window sizes to keep synthesis
 * tractable; an unsynthesized window simply compiles like the
 * baseline would).
 */
#ifndef HYDRIDE_SYNTHESIS_COMPILER_H
#define HYDRIDE_SYNTHESIS_COMPILER_H

#include <string>
#include <vector>

#include "codegen/macro_expand.h"
#include "halide/kernels.h"
#include "synthesis/cache.h"

namespace hydride {

/** Result of compiling one window. */
struct WindowCompilation
{
    bool synthesized = false;
    bool from_cache = false;
    double synth_seconds = 0.0;
    SynthesisResult synth; ///< Valid when synthesized.
    TargetProgram program;
};

/** Result of compiling a whole kernel. */
struct KernelCompilation
{
    std::string kernel;
    std::string isa;
    std::vector<WindowCompilation> windows;
    /** Effective (split) windows, one per entry of `windows`. */
    std::vector<HExprPtr> pieces;
    /** Original-window group of each piece; pieces of one group feed
     *  later pieces through their cut-point input ids. */
    std::vector<int> piece_group;
    double compile_seconds = 0.0;
    int cache_hits = 0;
    int synthesized_windows = 0;

    /** Static per-iteration cost (latency sum across windows). */
    int staticCost() const;

    /** Simulated runtime: per-iteration cost x dynamic iterations. */
    double runtimeCost(const Kernel &kernel_desc) const;
};

/** Hydride's synthesis-based compiler for one target. */
class HydrideCompiler
{
  public:
    HydrideCompiler(const AutoLLVMDict &dict, std::string isa,
                    int vector_bits, SynthesisOptions options = {},
                    SynthesisCache *cache = nullptr);

    /** Compile one window (consulting and filling the cache). */
    WindowCompilation compileWindow(const HExprPtr &window);

    /** Compile a whole kernel. */
    KernelCompilation compile(const Kernel &kernel);

    const AutoLLVMDict &dict() const { return dict_; }

  private:
    const AutoLLVMDict &dict_;
    std::string isa_;
    int vector_bits_;
    SynthesisOptions options_;
    SynthesisCache *cache_;
    SynthesisCache own_cache_;
    MacroExpander fallback_;
};

} // namespace hydride

#endif // HYDRIDE_SYNTHESIS_COMPILER_H
