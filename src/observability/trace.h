/**
 * @file
 * Span-based structured tracing for the Hydride pipeline.
 *
 * Every pipeline phase opens an RAII `TraceSpan` named with the
 * repository's `phase.component.event` convention (for example
 * `synthesis.cegis.window`). Spans form a per-thread hierarchy —
 * a span opened while another is alive on the same thread is its
 * child — and record wall time plus arbitrary key/value attributes.
 * Completed spans are buffered into a process-wide, lock-protected
 * event log that exports as
 *
 *  - Chrome `trace_event` JSON (`exportChromeJson`), loadable in
 *    `chrome://tracing` or https://ui.perfetto.dev, and
 *  - a human-readable indented tree (`exportTreeSummary`).
 *
 * Tracing is off by default; when disabled a TraceSpan costs one
 * relaxed atomic load and nothing is recorded. Enable it
 * programmatically with `trace::setEnabled(true)` or via the
 * environment:
 *
 *   HYDRIDE_TRACE=1          enable; write hydride_trace.<pid>.json
 *                            into $HYDRIDE_TRACE_DIR (or the CWD)
 *                            when the process exits
 *   HYDRIDE_TRACE=<path>     enable; write the JSON to <path>
 *   HYDRIDE_TRACE=0          force-disable
 */
#ifndef HYDRIDE_OBSERVABILITY_TRACE_H
#define HYDRIDE_OBSERVABILITY_TRACE_H

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace hydride {
namespace trace {

namespace detail {
extern std::atomic<bool> g_enabled;
} // namespace detail

/** True when spans are being recorded (single relaxed load). */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/** Turn tracing on or off at runtime. */
void setEnabled(bool on);

/** One completed span in the event log. */
struct SpanRecord
{
    std::string name;
    uint64_t thread_id = 0; ///< Small per-process thread ordinal.
    int depth = 0;          ///< Nesting depth on its thread (0 = root).
    uint64_t start_ns = 0;  ///< Nanoseconds since the trace epoch.
    uint64_t duration_ns = 0;
    std::vector<std::pair<std::string, std::string>> attrs;
};

/**
 * RAII span. Opens on construction (when tracing is enabled) and
 * records itself into the event log on destruction. Attributes set
 * while the span is alive are exported as Chrome `args`.
 */
class TraceSpan
{
  public:
    explicit TraceSpan(const char *name);
    ~TraceSpan();
    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    void setAttr(const std::string &key, const std::string &value);
    void setAttr(const std::string &key, const char *value);
    void setAttr(const std::string &key, int64_t value);
    void setAttr(const std::string &key, int value);
    void setAttr(const std::string &key, double value);
    void setAttr(const std::string &key, bool value);

    /** True when this span is actually recording. */
    bool active() const { return active_; }

  private:
    bool active_ = false;
    uint64_t start_ns_ = 0;
    int depth_ = 0;
    std::string name_;
    std::vector<std::pair<std::string, std::string>> attrs_;
};

/** Discard every buffered span (testing and between bench phases). */
void reset();

/** Copy of the event log, in span-completion order. */
std::vector<SpanRecord> snapshotSpans();

/** The buffered spans as Chrome trace_event JSON. */
std::string exportChromeJson();

/** The buffered spans as an indented per-thread tree with times. */
std::string exportTreeSummary();

/** Write exportChromeJson() to `path`; false on IO error. */
bool writeChromeJson(const std::string &path);

/** (Re)read HYDRIDE_TRACE / HYDRIDE_TRACE_DIR and apply them. Runs
 *  automatically before main(); callable again from tests. */
void configureFromEnv();

} // namespace trace
} // namespace hydride

#endif // HYDRIDE_OBSERVABILITY_TRACE_H
