/**
 * @file
 * Leveled diagnostic logging for the Hydride pipeline.
 *
 * All human-facing diagnostics (the CEGIS debug stream, parser and
 * lowering warnings, `warn()` in support/error.h) route through the
 * `HYD_LOG(level, message)` macro so verbosity is controlled in one
 * place:
 *
 *  - programmatically via `logging::setLevel()`, or
 *  - with `HYDRIDE_LOG_LEVEL=debug|info|warn|error|off` (the legacy
 *    `HYDRIDE_SYNTH_DEBUG=1` switch is honoured as `debug`).
 *
 * The message argument of HYD_LOG is evaluated lazily — below the
 * active level the cost is a single relaxed atomic load.
 */
#ifndef HYDRIDE_OBSERVABILITY_LOG_H
#define HYDRIDE_OBSERVABILITY_LOG_H

#include <atomic>
#include <string>

namespace hydride {
namespace logging {

/** Severity levels, least to most severe. */
enum class Level : int {
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
    Off = 4, ///< Suppresses everything (not a message level).
};

namespace detail {
extern std::atomic<int> g_level;
} // namespace detail

/** Current minimum level that is emitted. */
inline Level
level()
{
    return static_cast<Level>(
        detail::g_level.load(std::memory_order_relaxed));
}

/** Set the minimum emitted level. */
void setLevel(Level level);

/** True when a message at `at` would be emitted. */
inline bool
shouldLog(Level at)
{
    return at != Level::Off && static_cast<int>(at) >=
                                   detail::g_level.load(
                                       std::memory_order_relaxed);
}

/**
 * Emit one message at `at` with the standard `hydride: <level>:`
 * prefix. Callers normally go through HYD_LOG, which performs the
 * level check without evaluating the message.
 */
void write(Level at, const std::string &message);

/** Emit a pre-formatted line verbatim (used by fatal/panic, which
 *  must never be suppressed by the log level). */
void writeRaw(const std::string &line);

/** Parse a level name ("debug", "info", "warn", "error", "off");
 *  false when `text` is not a level name. */
bool parseLevel(const std::string &text, Level &out);

/** (Re)read HYDRIDE_LOG_LEVEL / HYDRIDE_SYNTH_DEBUG and apply them.
 *  Runs automatically before main(); callable again from tests. */
void configureFromEnv();

} // namespace logging
} // namespace hydride

/**
 * Leveled logging: `HYD_LOG(Warn, "lowering fell back: " + why);`
 * The message expression is only evaluated when the level passes.
 */
#define HYD_LOG(level_, message_)                                           \
    do {                                                                    \
        if (::hydride::logging::shouldLog(                                  \
                ::hydride::logging::Level::level_)) {                       \
            ::hydride::logging::write(                                      \
                ::hydride::logging::Level::level_, (message_));             \
        }                                                                   \
    } while (false)

#endif // HYDRIDE_OBSERVABILITY_LOG_H
