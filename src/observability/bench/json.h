/**
 * @file
 * Minimal JSON value, parser and writer for the benchmarking
 * subsystem. The repository's other JSON is write-only (trace and
 * metrics exports); the bench trajectory needs to *read* its own
 * artifacts back — `hydride-bench` merges per-binary reports and the
 * regression gate compares a run against a committed baseline — so
 * round-tripping lives here, stdlib-only, instead of growing a
 * third-party dependency.
 *
 * Supported: objects, arrays, strings (with \uXXXX escapes decoded
 * to UTF-8), doubles, bools, null. Numbers parse as double, which is
 * exact for every integer the bench schema emits (counts and
 * iteration totals fit in 2^53).
 */
#ifndef HYDRIDE_OBSERVABILITY_BENCH_JSON_H
#define HYDRIDE_OBSERVABILITY_BENCH_JSON_H

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace hydride {
namespace bjson {

class Value;
using ValuePtr = std::shared_ptr<Value>;

/** One JSON value; a tagged union over the seven JSON kinds. */
class Value
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<ValuePtr> items;
    // Parallel vectors keep object keys in insertion order (stable
    // diffs for committed BENCH_*.json artifacts).
    std::vector<std::string> keys;
    std::vector<ValuePtr> values;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member by key; nullptr when absent or not an object. */
    const Value *get(const std::string &key) const;

    /** Typed accessors with defaults (never throw). */
    double numberOr(double fallback) const;
    std::string stringOr(const std::string &fallback) const;
    bool boolOr(bool fallback) const;

    /** Convenience: member lookup + typed access in one step. */
    double getNumber(const std::string &key, double fallback) const;
    std::string getString(const std::string &key,
                          const std::string &fallback) const;
    bool getBool(const std::string &key, bool fallback) const;

    // -- Builders ------------------------------------------------------------
    static ValuePtr makeNull();
    static ValuePtr makeBool(bool b);
    static ValuePtr makeNumber(double n);
    static ValuePtr makeString(std::string s);
    static ValuePtr makeArray();
    static ValuePtr makeObject();

    /** Append/overwrite an object member (insertion order kept). */
    void set(const std::string &key, ValuePtr value);
    /** Append an array element. */
    void push(ValuePtr value);
};

/**
 * Parse `text` into a Value. Returns nullptr and fills `error`
 * (message with byte offset) on malformed input. Trailing
 * whitespace is allowed; trailing garbage is an error.
 */
ValuePtr parse(const std::string &text, std::string &error);

/** Serialize compactly (no whitespace). */
std::string write(const Value &value);

/** Serialize with two-space indentation (committed artifacts stay
 *  diffable line-by-line). */
std::string writePretty(const Value &value);

/** JSON string escaping (shared with the writers). */
std::string escape(const std::string &text);

/** Format a finite double the way the bench schema expects
 *  (shortest %.9g form; NaN/Inf clamp to 0 — JSON has no spelling
 *  for them). */
std::string formatNumber(double value);

} // namespace bjson
} // namespace hydride

#endif // HYDRIDE_OBSERVABILITY_BENCH_JSON_H
