/**
 * @file
 * Per-phase synthesis profiler riding the trace-span infrastructure.
 *
 * The CEGIS hot path opens spans around its five cost centers —
 * candidate enumeration, concrete counterexample evaluation,
 * symbolic verification, SAT solving and memoization-cache lookup
 * (see docs/benchmarking.md for the span names). This profiler
 * consumes a `trace::snapshotSpans()` dump and attributes wall time
 * *exclusively*: a SAT solve nested inside a symbolic-verification
 * span counts as SAT, not twice. Whatever a window spent outside
 * the five phases (grammar construction, lowering, bookkeeping)
 * lands in `other_ms`, so per window
 *
 *     enumeration + concrete_eval + symbolic + sat + cache + other
 *         == window total
 *
 * holds exactly — the invariant tests/test_bench_report.cpp pins.
 *
 * A "window" is an outermost `synthesis.compiler.window` or
 * `synthesis.cegis.window` span (the compiler wraps the latter in
 * the former; only the outermost counts). Phase spans outside any
 * window (e.g. hydride-verify's equivalence passes) are ignored.
 */
#ifndef HYDRIDE_OBSERVABILITY_BENCH_PHASE_PROFILER_H
#define HYDRIDE_OBSERVABILITY_BENCH_PHASE_PROFILER_H

#include <string>
#include <vector>

#include "observability/trace.h"

namespace hydride {
namespace bench {

/** Exclusive per-phase wall time, in milliseconds. */
struct PhaseTotals
{
    double enumeration_ms = 0.0;
    double concrete_eval_ms = 0.0;
    double symbolic_ms = 0.0;
    double sat_ms = 0.0;
    double cache_lookup_ms = 0.0;
    double other_ms = 0.0;
    double total_ms = 0.0; ///< Sum of window-span durations.
    uint64_t windows = 0;  ///< Number of window containers seen.

    /** Sum of the six phase buckets (== total_ms up to rounding). */
    double phaseSum() const
    {
        return enumeration_ms + concrete_eval_ms + symbolic_ms + sat_ms +
               cache_lookup_ms + other_ms;
    }
};

/** One window container with its exclusive phase split. */
struct WindowBreakdown
{
    std::string container; ///< Span name of the window container.
    uint64_t start_ns = 0; ///< Start, for chronological ordering.
    PhaseTotals totals;    ///< windows == 1 for a single breakdown.
};

/** Aggregate plus per-window attribution for one span dump. */
struct PhaseProfile
{
    PhaseTotals aggregate;
    std::vector<WindowBreakdown> windows;
};

/** Span names the profiler maps to phases (shared with the hot-path
 *  instrumentation so the two cannot drift apart). */
extern const char *const kSpanWindowCompiler;  // synthesis.compiler.window
extern const char *const kSpanWindowCegis;     // synthesis.cegis.window
extern const char *const kSpanEnumerate;       // synthesis.cegis.enumerate
extern const char *const kSpanConcreteEval;    // synthesis.cegis.concrete_eval
extern const char *const kSpanSymbolic;        // symbolic.equiv.check
extern const char *const kSpanSat;             // symbolic.sat.solve
extern const char *const kSpanCacheLookup;     // synthesis.cache.lookup

/** Attribute a span dump to phases. O(n log n) in span count. */
PhaseProfile profilePhases(const std::vector<trace::SpanRecord> &spans);

/** Convenience: profile the live trace buffer. */
PhaseProfile profileCurrentTrace();

/**
 * Human-readable summary for `--profile`: the aggregate phase table
 * (share of total per phase) followed by the `top_windows` slowest
 * windows with their splits.
 */
std::string formatProfile(const PhaseProfile &profile,
                          size_t top_windows = 5);

} // namespace bench
} // namespace hydride

#endif // HYDRIDE_OBSERVABILITY_BENCH_PHASE_PROFILER_H
