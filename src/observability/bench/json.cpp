#include "observability/bench/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace hydride {
namespace bjson {

// ---- Value accessors -------------------------------------------------------

const Value *
Value::get(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (size_t i = 0; i < keys.size(); ++i)
        if (keys[i] == key)
            return values[i].get();
    return nullptr;
}

double
Value::numberOr(double fallback) const
{
    return kind == Kind::Number ? number : fallback;
}

std::string
Value::stringOr(const std::string &fallback) const
{
    return kind == Kind::String ? text : fallback;
}

bool
Value::boolOr(bool fallback) const
{
    return kind == Kind::Bool ? boolean : fallback;
}

double
Value::getNumber(const std::string &key, double fallback) const
{
    const Value *v = get(key);
    return v ? v->numberOr(fallback) : fallback;
}

std::string
Value::getString(const std::string &key, const std::string &fallback) const
{
    const Value *v = get(key);
    return v ? v->stringOr(fallback) : fallback;
}

bool
Value::getBool(const std::string &key, bool fallback) const
{
    const Value *v = get(key);
    return v ? v->boolOr(fallback) : fallback;
}

// ---- Builders --------------------------------------------------------------

ValuePtr
Value::makeNull()
{
    return std::make_shared<Value>();
}

ValuePtr
Value::makeBool(bool b)
{
    auto v = std::make_shared<Value>();
    v->kind = Kind::Bool;
    v->boolean = b;
    return v;
}

ValuePtr
Value::makeNumber(double n)
{
    auto v = std::make_shared<Value>();
    v->kind = Kind::Number;
    v->number = std::isfinite(n) ? n : 0.0;
    return v;
}

ValuePtr
Value::makeString(std::string s)
{
    auto v = std::make_shared<Value>();
    v->kind = Kind::String;
    v->text = std::move(s);
    return v;
}

ValuePtr
Value::makeArray()
{
    auto v = std::make_shared<Value>();
    v->kind = Kind::Array;
    return v;
}

ValuePtr
Value::makeObject()
{
    auto v = std::make_shared<Value>();
    v->kind = Kind::Object;
    return v;
}

void
Value::set(const std::string &key, ValuePtr value)
{
    for (size_t i = 0; i < keys.size(); ++i) {
        if (keys[i] == key) {
            values[i] = std::move(value);
            return;
        }
    }
    keys.push_back(key);
    values.push_back(std::move(value));
}

void
Value::push(ValuePtr value)
{
    items.push_back(std::move(value));
}

// ---- Parser ----------------------------------------------------------------

namespace {

class Parser
{
  public:
    Parser(const std::string &text, std::string &error)
        : text_(text), error_(error)
    {
    }

    ValuePtr
    run()
    {
        ValuePtr value = parseValue();
        if (!value)
            return nullptr;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after JSON value");
        return value;
    }

  private:
    ValuePtr
    fail(const std::string &message)
    {
        if (error_.empty()) {
            error_ = message + " at byte " + std::to_string(pos_);
        }
        return nullptr;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    ValuePtr
    parseValue()
    {
        if (++depth_ > 256) {
            --depth_;
            return fail("nesting too deep");
        }
        skipWs();
        ValuePtr out;
        if (pos_ >= text_.size()) {
            out = fail("unexpected end of input");
        } else {
            const char c = text_[pos_];
            if (c == '{')
                out = parseObject();
            else if (c == '[')
                out = parseArray();
            else if (c == '"')
                out = parseString();
            else if (c == 't' || c == 'f')
                out = parseBool();
            else if (c == 'n')
                out = parseNull();
            else
                out = parseNumber();
        }
        --depth_;
        return out;
    }

    ValuePtr
    parseObject()
    {
        consume('{');
        ValuePtr obj = Value::makeObject();
        skipWs();
        if (consume('}'))
            return obj;
        for (;;) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key string");
            ValuePtr key = parseString();
            if (!key)
                return nullptr;
            skipWs();
            if (!consume(':'))
                return fail("expected ':' after object key");
            ValuePtr value = parseValue();
            if (!value)
                return nullptr;
            obj->set(key->text, std::move(value));
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                return obj;
            return fail("expected ',' or '}' in object");
        }
    }

    ValuePtr
    parseArray()
    {
        consume('[');
        ValuePtr arr = Value::makeArray();
        skipWs();
        if (consume(']'))
            return arr;
        for (;;) {
            ValuePtr value = parseValue();
            if (!value)
                return nullptr;
            arr->push(std::move(value));
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                return arr;
            return fail("expected ',' or ']' in array");
        }
    }

    ValuePtr
    parseString()
    {
        consume('"');
        std::string out;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return Value::makeString(std::move(out));
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("unescaped control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("dangling escape in string");
            const char esc = text_[pos_++];
            switch (esc) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= h - '0';
                    else if (h >= 'a' && h <= 'f')
                        code |= h - 'a' + 10;
                    else if (h >= 'A' && h <= 'F')
                        code |= h - 'A' + 10;
                    else
                        return fail("bad hex digit in \\u escape");
                }
                // Encode as UTF-8 (surrogate pairs are passed through
                // as two separate escapes; the bench schema never
                // emits astral-plane text).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
            }
            default: return fail("unknown escape in string");
            }
        }
        return fail("unterminated string");
    }

    ValuePtr
    parseBool()
    {
        if (text_.compare(pos_, 4, "true") == 0) {
            pos_ += 4;
            return Value::makeBool(true);
        }
        if (text_.compare(pos_, 5, "false") == 0) {
            pos_ += 5;
            return Value::makeBool(false);
        }
        return fail("expected 'true' or 'false'");
    }

    ValuePtr
    parseNull()
    {
        if (text_.compare(pos_, 4, "null") == 0) {
            pos_ += 4;
            return Value::makeNull();
        }
        return fail("expected 'null'");
    }

    ValuePtr
    parseNumber()
    {
        const size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start)
            return fail("expected a JSON value");
        const std::string token = text_.substr(start, pos_ - start);
        char *end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        if (!end || *end != '\0' || !std::isfinite(value)) {
            pos_ = start;
            return fail("malformed number");
        }
        return Value::makeNumber(value);
    }

    const std::string &text_;
    std::string &error_;
    size_t pos_ = 0;
    int depth_ = 0;
};

void
writeValue(const Value &value, std::ostringstream &os, int indent,
           int level)
{
    const bool pretty = indent > 0;
    const std::string pad =
        pretty ? std::string(static_cast<size_t>(indent) * (level + 1), ' ')
               : std::string();
    const std::string close_pad =
        pretty ? std::string(static_cast<size_t>(indent) * level, ' ')
               : std::string();
    switch (value.kind) {
    case Value::Kind::Null: os << "null"; break;
    case Value::Kind::Bool: os << (value.boolean ? "true" : "false"); break;
    case Value::Kind::Number: os << formatNumber(value.number); break;
    case Value::Kind::String:
        os << '"' << escape(value.text) << '"';
        break;
    case Value::Kind::Array:
        if (value.items.empty()) {
            os << "[]";
            break;
        }
        os << '[';
        for (size_t i = 0; i < value.items.size(); ++i) {
            if (i)
                os << ',';
            if (pretty)
                os << '\n' << pad;
            writeValue(*value.items[i], os, indent, level + 1);
        }
        if (pretty)
            os << '\n' << close_pad;
        os << ']';
        break;
    case Value::Kind::Object:
        if (value.keys.empty()) {
            os << "{}";
            break;
        }
        os << '{';
        for (size_t i = 0; i < value.keys.size(); ++i) {
            if (i)
                os << ',';
            if (pretty)
                os << '\n' << pad;
            os << '"' << escape(value.keys[i]) << "\":";
            if (pretty)
                os << ' ';
            writeValue(*value.values[i], os, indent, level + 1);
        }
        if (pretty)
            os << '\n' << close_pad;
        os << '}';
        break;
    }
}

} // namespace

ValuePtr
parse(const std::string &text, std::string &error)
{
    error.clear();
    Parser parser(text, error);
    return parser.run();
}

std::string
write(const Value &value)
{
    std::ostringstream os;
    writeValue(value, os, 0, 0);
    return os.str();
}

std::string
writePretty(const Value &value)
{
    std::ostringstream os;
    writeValue(value, os, 2, 0);
    return os.str();
}

std::string
escape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 8);
    for (const char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
formatNumber(double value)
{
    if (!std::isfinite(value))
        return "0";
    // Integers print without a fraction: counts and iteration totals
    // stay integer-typed for consumers like check_bench.py.
    if (value == std::floor(value) && std::fabs(value) < 9.007199e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", value);
        return buf;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    return buf;
}

} // namespace bjson
} // namespace hydride
