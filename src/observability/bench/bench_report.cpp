#include "observability/bench/bench_report.h"

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <map>
#include <sstream>

#include "observability/bench/json.h"

namespace hydride {
namespace bench {

const char *const kSchemaId = "hydride-bench/v1";

namespace {

bjson::ValuePtr
phasesToJson(const PhaseTotals &phases)
{
    auto obj = bjson::Value::makeObject();
    obj->set("windows", bjson::Value::makeNumber(
                            static_cast<double>(phases.windows)));
    obj->set("total_ms", bjson::Value::makeNumber(phases.total_ms));
    obj->set("enumeration_ms",
             bjson::Value::makeNumber(phases.enumeration_ms));
    obj->set("concrete_eval_ms",
             bjson::Value::makeNumber(phases.concrete_eval_ms));
    obj->set("symbolic_ms", bjson::Value::makeNumber(phases.symbolic_ms));
    obj->set("sat_ms", bjson::Value::makeNumber(phases.sat_ms));
    obj->set("cache_lookup_ms",
             bjson::Value::makeNumber(phases.cache_lookup_ms));
    obj->set("other_ms", bjson::Value::makeNumber(phases.other_ms));
    return obj;
}

PhaseTotals
phasesFromJson(const bjson::Value &obj)
{
    PhaseTotals phases;
    phases.windows =
        static_cast<uint64_t>(obj.getNumber("windows", 0.0));
    phases.total_ms = obj.getNumber("total_ms", 0.0);
    phases.enumeration_ms = obj.getNumber("enumeration_ms", 0.0);
    phases.concrete_eval_ms = obj.getNumber("concrete_eval_ms", 0.0);
    phases.symbolic_ms = obj.getNumber("symbolic_ms", 0.0);
    phases.sat_ms = obj.getNumber("sat_ms", 0.0);
    phases.cache_lookup_ms = obj.getNumber("cache_lookup_ms", 0.0);
    phases.other_ms = obj.getNumber("other_ms", 0.0);
    return phases;
}

bjson::ValuePtr
reportToValue(const BenchReport &report)
{
    auto obj = bjson::Value::makeObject();
    obj->set("schema", bjson::Value::makeString(kSchemaId));
    obj->set("kind", bjson::Value::makeString("report"));
    obj->set("suite", bjson::Value::makeString(report.suite));
    obj->set("smoke", bjson::Value::makeBool(report.smoke));

    auto benchmarks = bjson::Value::makeArray();
    for (const BenchEntry &entry : report.benchmarks) {
        auto e = bjson::Value::makeObject();
        e->set("name", bjson::Value::makeString(entry.name));
        e->set("kind", bjson::Value::makeString(entry.kind));
        if (entry.kind == "ratio") {
            e->set("value", bjson::Value::makeNumber(entry.value));
        } else {
            e->set("wall_ms", bjson::Value::makeNumber(entry.wall_ms));
            if (entry.cpu_ms >= 0.0)
                e->set("cpu_ms", bjson::Value::makeNumber(entry.cpu_ms));
        }
        e->set("iterations", bjson::Value::makeNumber(
                                 static_cast<double>(entry.iterations)));
        benchmarks->push(std::move(e));
    }
    obj->set("benchmarks", std::move(benchmarks));

    if (report.has_phases)
        obj->set("phases", phasesToJson(report.phases));

    auto metrics_obj = bjson::Value::makeObject();
    auto counters = bjson::Value::makeObject();
    for (const auto &[name, value] : report.metrics.counters)
        counters->set(name, bjson::Value::makeNumber(
                                static_cast<double>(value)));
    metrics_obj->set("counters", std::move(counters));
    auto gauges = bjson::Value::makeObject();
    for (const auto &[name, value] : report.metrics.gauges)
        gauges->set(name, bjson::Value::makeNumber(
                              static_cast<double>(value)));
    metrics_obj->set("gauges", std::move(gauges));
    auto hists = bjson::Value::makeObject();
    for (const HistSummary &hist : report.metrics.histograms) {
        auto h = bjson::Value::makeObject();
        h->set("count", bjson::Value::makeNumber(
                            static_cast<double>(hist.count)));
        h->set("sum", bjson::Value::makeNumber(hist.sum));
        h->set("min", bjson::Value::makeNumber(hist.min));
        h->set("max", bjson::Value::makeNumber(hist.max));
        h->set("p50", bjson::Value::makeNumber(hist.p50));
        h->set("p90", bjson::Value::makeNumber(hist.p90));
        h->set("p99", bjson::Value::makeNumber(hist.p99));
        hists->set(hist.name, std::move(h));
    }
    metrics_obj->set("histograms", std::move(hists));
    obj->set("metrics", std::move(metrics_obj));
    return obj;
}

bool
reportFromValue(const bjson::Value &obj, BenchReport &out,
                std::string &error)
{
    const std::string schema = obj.getString("schema", "");
    if (schema != kSchemaId) {
        error = "unsupported schema '" + schema + "' (want " +
                kSchemaId + ")";
        return false;
    }
    if (obj.getString("kind", "report") != "report") {
        error = "expected kind 'report'";
        return false;
    }
    out = BenchReport();
    out.suite = obj.getString("suite", "");
    if (out.suite.empty()) {
        error = "report is missing its suite name";
        return false;
    }
    out.smoke = obj.getBool("smoke", false);

    const bjson::Value *benchmarks = obj.get("benchmarks");
    if (!benchmarks || !benchmarks->isArray()) {
        error = "report '" + out.suite + "' has no benchmarks array";
        return false;
    }
    for (const auto &item : benchmarks->items) {
        if (!item->isObject()) {
            error = "benchmark entry is not an object";
            return false;
        }
        BenchEntry entry;
        entry.name = item->getString("name", "");
        if (entry.name.empty()) {
            error = "benchmark entry without a name in '" + out.suite +
                    "'";
            return false;
        }
        entry.kind = item->getString("kind", "time");
        entry.wall_ms = item->getNumber("wall_ms", 0.0);
        entry.cpu_ms = item->getNumber("cpu_ms", -1.0);
        entry.value = item->getNumber("value", 0.0);
        entry.iterations =
            static_cast<long>(item->getNumber("iterations", 1.0));
        out.benchmarks.push_back(std::move(entry));
    }

    if (const bjson::Value *phases = obj.get("phases")) {
        if (!phases->isObject()) {
            error = "phases is not an object";
            return false;
        }
        out.has_phases = true;
        out.phases = phasesFromJson(*phases);
    }

    if (const bjson::Value *metrics_obj = obj.get("metrics")) {
        if (const bjson::Value *counters = metrics_obj->get("counters")) {
            for (size_t i = 0; i < counters->keys.size(); ++i) {
                out.metrics.counters.emplace_back(
                    counters->keys[i],
                    static_cast<uint64_t>(
                        counters->values[i]->numberOr(0.0)));
            }
        }
        if (const bjson::Value *gauges = metrics_obj->get("gauges")) {
            for (size_t i = 0; i < gauges->keys.size(); ++i) {
                out.metrics.gauges.emplace_back(
                    gauges->keys[i],
                    static_cast<int64_t>(
                        gauges->values[i]->numberOr(0.0)));
            }
        }
        if (const bjson::Value *hists = metrics_obj->get("histograms")) {
            for (size_t i = 0; i < hists->keys.size(); ++i) {
                const bjson::Value &h = *hists->values[i];
                HistSummary hist;
                hist.name = hists->keys[i];
                hist.count =
                    static_cast<uint64_t>(h.getNumber("count", 0.0));
                hist.sum = h.getNumber("sum", 0.0);
                hist.min = h.getNumber("min", 0.0);
                hist.max = h.getNumber("max", 0.0);
                hist.p50 = h.getNumber("p50", 0.0);
                hist.p90 = h.getNumber("p90", 0.0);
                hist.p99 = h.getNumber("p99", 0.0);
                out.metrics.histograms.push_back(std::move(hist));
            }
        }
    }
    return true;
}

} // namespace

MetricsSummary
MetricsSummary::fromSnapshot(const metrics::Snapshot &snap)
{
    MetricsSummary summary;
    summary.counters = snap.counters;
    summary.gauges = snap.gauges;
    for (const metrics::Snapshot::Hist &hist : snap.histograms) {
        HistSummary h;
        h.name = hist.name;
        h.count = hist.count;
        h.sum = hist.sum;
        h.min = hist.min;
        h.max = hist.max;
        h.p50 = hist.quantile(0.50);
        h.p90 = hist.quantile(0.90);
        h.p99 = hist.quantile(0.99);
        summary.histograms.push_back(std::move(h));
    }
    return summary;
}

std::string
BenchReport::toJson(bool pretty) const
{
    const bjson::ValuePtr value = reportToValue(*this);
    return pretty ? bjson::writePretty(*value) : bjson::write(*value);
}

bool
BenchReport::fromJson(const std::string &text, BenchReport &out,
                      std::string &error)
{
    const bjson::ValuePtr doc = bjson::parse(text, error);
    if (!doc)
        return false;
    if (!doc->isObject()) {
        error = "top-level JSON value is not an object";
        return false;
    }
    return reportFromValue(*doc, out, error);
}

std::string
SuiteReport::toJson(bool pretty) const
{
    auto obj = bjson::Value::makeObject();
    obj->set("schema", bjson::Value::makeString(kSchemaId));
    obj->set("kind", bjson::Value::makeString("suite"));
    obj->set("smoke", bjson::Value::makeBool(smoke));
    if (!label.empty())
        obj->set("label", bjson::Value::makeString(label));
    obj->set("phases", phasesToJson(aggregatePhases()));
    auto arr = bjson::Value::makeArray();
    for (const BenchReport &report : suites) {
        std::string sub = report.toJson(false);
        std::string error;
        // Re-embed through the value tree so pretty printing nests.
        bjson::ValuePtr v = bjson::parse(sub, error);
        arr->push(std::move(v));
    }
    obj->set("suites", std::move(arr));
    return pretty ? bjson::writePretty(*obj) : bjson::write(*obj);
}

bool
SuiteReport::fromJson(const std::string &text, SuiteReport &out,
                      std::string &error)
{
    const bjson::ValuePtr doc = bjson::parse(text, error);
    if (!doc)
        return false;
    if (!doc->isObject()) {
        error = "top-level JSON value is not an object";
        return false;
    }
    const std::string schema = doc->getString("schema", "");
    if (schema != kSchemaId) {
        error = "unsupported schema '" + schema + "' (want " +
                kSchemaId + ")";
        return false;
    }
    if (doc->getString("kind", "") != "suite") {
        error = "expected kind 'suite' (a merged BENCH_*.json)";
        return false;
    }
    out = SuiteReport();
    out.smoke = doc->getBool("smoke", false);
    out.label = doc->getString("label", "");
    const bjson::Value *suites = doc->get("suites");
    if (!suites || !suites->isArray()) {
        error = "suite artifact has no suites array";
        return false;
    }
    for (const auto &item : suites->items) {
        BenchReport report;
        if (!item->isObject()) {
            error = "suites entry is not an object";
            return false;
        }
        if (!reportFromValue(*item, report, error))
            return false;
        out.suites.push_back(std::move(report));
    }
    return true;
}

PhaseTotals
SuiteReport::aggregatePhases() const
{
    PhaseTotals agg;
    for (const BenchReport &report : suites) {
        if (!report.has_phases)
            continue;
        agg.enumeration_ms += report.phases.enumeration_ms;
        agg.concrete_eval_ms += report.phases.concrete_eval_ms;
        agg.symbolic_ms += report.phases.symbolic_ms;
        agg.sat_ms += report.phases.sat_ms;
        agg.cache_lookup_ms += report.phases.cache_lookup_ms;
        agg.other_ms += report.phases.other_ms;
        agg.total_ms += report.phases.total_ms;
        agg.windows += report.phases.windows;
    }
    return agg;
}

// ---- Regression gate -------------------------------------------------------

CompareResult
compareReports(const SuiteReport &baseline, const SuiteReport &current,
               const CompareOptions &options)
{
    CompareResult result;
    if (baseline.smoke != current.smoke) {
        result.error =
            "baseline and current runs use different workloads "
            "(smoke vs full); the numbers are not comparable";
        return result;
    }

    std::map<std::pair<std::string, std::string>, double> base_times;
    for (const BenchReport &report : baseline.suites) {
        for (const BenchEntry &entry : report.benchmarks) {
            if (entry.kind == "time")
                base_times[{report.suite, entry.name}] = entry.wall_ms;
        }
    }

    std::map<std::pair<std::string, std::string>, bool> seen;
    for (const BenchReport &report : current.suites) {
        for (const BenchEntry &entry : report.benchmarks) {
            if (entry.kind != "time")
                continue;
            const auto key = std::make_pair(report.suite, entry.name);
            auto it = base_times.find(key);
            if (it == base_times.end()) {
                ++result.only_current;
                continue;
            }
            seen[key] = true;
            ++result.compared;
            const double base = it->second * options.scale_baseline;
            const double cur = entry.wall_ms;
            CompareFinding finding;
            finding.suite = report.suite;
            finding.name = entry.name;
            finding.baseline_ms = base;
            finding.current_ms = cur;
            finding.ratio = base > 0.0 ? cur / base
                                       : (cur > 0.0 ? 1e9 : 1.0);
            if (cur > base * (1.0 + options.tolerance) &&
                cur - base > options.min_abs_ms) {
                result.regressions.push_back(finding);
            } else if (base > cur * (1.0 + options.tolerance) &&
                       base - cur > options.min_abs_ms) {
                result.improvements.push_back(finding);
            }
        }
    }
    result.only_baseline =
        static_cast<int>(base_times.size() - seen.size());

    auto by_ratio = [](const CompareFinding &a, const CompareFinding &b) {
        return a.ratio > b.ratio;
    };
    std::sort(result.regressions.begin(), result.regressions.end(),
              by_ratio);
    std::sort(result.improvements.begin(), result.improvements.end(),
              [](const CompareFinding &a, const CompareFinding &b) {
                  return a.ratio < b.ratio;
              });
    return result;
}

std::string
formatCompare(const CompareResult &result, const CompareOptions &options)
{
    std::ostringstream os;
    char buf[256];
    if (!result.error.empty()) {
        os << "compare error: " << result.error << "\n";
        return os.str();
    }
    std::snprintf(buf, sizeof(buf),
                  "compared %d time benchmarks (tolerance +%.0f%%, "
                  "floor %.1f ms)\n",
                  result.compared, options.tolerance * 100.0,
                  options.min_abs_ms);
    os << buf;
    if (result.only_baseline > 0) {
        os << "  " << result.only_baseline
           << " baseline entries missing from the current run\n";
    }
    if (result.only_current > 0) {
        os << "  " << result.only_current
           << " new entries not in the baseline\n";
    }
    for (const CompareFinding &f : result.regressions) {
        std::snprintf(buf, sizeof(buf),
                      "  REGRESSION %s/%s: %.2f ms -> %.2f ms (%.2fx)\n",
                      f.suite.c_str(), f.name.c_str(), f.baseline_ms,
                      f.current_ms, f.ratio);
        os << buf;
    }
    for (const CompareFinding &f : result.improvements) {
        std::snprintf(buf, sizeof(buf),
                      "  improvement %s/%s: %.2f ms -> %.2f ms (%.2fx)\n",
                      f.suite.c_str(), f.name.c_str(), f.baseline_ms,
                      f.current_ms, f.ratio);
        os << buf;
    }
    if (result.regressions.empty())
        os << "no regressions\n";
    else
        os << result.regressions.size() << " regression(s) detected\n";
    return os.str();
}

double
cpuTimeMs()
{
    return 1e3 * static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

} // namespace bench
} // namespace hydride
