#include "observability/bench/phase_profiler.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace hydride {
namespace bench {

const char *const kSpanWindowCompiler = "synthesis.compiler.window";
const char *const kSpanWindowCegis = "synthesis.cegis.window";
const char *const kSpanEnumerate = "synthesis.cegis.enumerate";
const char *const kSpanConcreteEval = "synthesis.cegis.concrete_eval";
const char *const kSpanSymbolic = "symbolic.equiv.check";
const char *const kSpanSat = "symbolic.sat.solve";
const char *const kSpanCacheLookup = "synthesis.cache.lookup";

namespace {

enum Phase
{
    kEnumeration = 0,
    kConcreteEval,
    kSymbolic,
    kSat,
    kCacheLookup,
    kPhaseCount,
    kNotAPhase = -1,
};

int
phaseOf(const std::string &name)
{
    if (name == kSpanEnumerate)
        return kEnumeration;
    if (name == kSpanConcreteEval)
        return kConcreteEval;
    if (name == kSpanSymbolic)
        return kSymbolic;
    if (name == kSpanSat)
        return kSat;
    if (name == kSpanCacheLookup)
        return kCacheLookup;
    return kNotAPhase;
}

bool
isContainer(const std::string &name)
{
    return name == kSpanWindowCompiler || name == kSpanWindowCegis;
}

double
msOf(uint64_t ns)
{
    return static_cast<double>(ns) / 1e6;
}

void
addPhase(PhaseTotals &totals, int phase, double ms)
{
    switch (phase) {
    case kEnumeration: totals.enumeration_ms += ms; break;
    case kConcreteEval: totals.concrete_eval_ms += ms; break;
    case kSymbolic: totals.symbolic_ms += ms; break;
    case kSat: totals.sat_ms += ms; break;
    case kCacheLookup: totals.cache_lookup_ms += ms; break;
    default: break;
    }
}

/** One open span on the attribution stack. */
struct Node
{
    bool container = false;
    int phase = kNotAPhase;
    uint64_t start_ns = 0;
    uint64_t end_ns = 0;
    uint64_t child_phase_ns = 0; ///< Nearest-phase-children total.
    int window_idx = -1;         ///< Enclosing window, -1 outside.
};

} // namespace

PhaseProfile
profilePhases(const std::vector<trace::SpanRecord> &spans)
{
    PhaseProfile profile;

    // Group the relevant spans per thread; attribution is a per-thread
    // interval sweep.
    std::map<uint64_t, std::vector<const trace::SpanRecord *>> by_thread;
    for (const trace::SpanRecord &span : spans) {
        if (isContainer(span.name) || phaseOf(span.name) != kNotAPhase)
            by_thread[span.thread_id].push_back(&span);
    }

    for (auto &[tid, thread_spans] : by_thread) {
        (void)tid;
        // Parents sort before children: earlier start first, then
        // shallower depth (ties happen when a child opens in the same
        // nanosecond tick).
        std::sort(thread_spans.begin(), thread_spans.end(),
                  [](const trace::SpanRecord *a,
                     const trace::SpanRecord *b) {
                      if (a->start_ns != b->start_ns)
                          return a->start_ns < b->start_ns;
                      return a->depth < b->depth;
                  });

        std::vector<Node> stack;
        auto finalize = [&](const Node &node) {
            const uint64_t dur_ns = node.end_ns - node.start_ns;
            if (node.container) {
                WindowBreakdown &win = profile.windows[node.window_idx];
                win.totals.total_ms = msOf(dur_ns);
                win.totals.windows = 1;
                const double attributed =
                    win.totals.phaseSum(); // other_ms still 0 here.
                win.totals.other_ms =
                    std::max(0.0, win.totals.total_ms - attributed);
            } else {
                const uint64_t excl_ns =
                    dur_ns > node.child_phase_ns
                        ? dur_ns - node.child_phase_ns
                        : 0;
                if (node.window_idx >= 0) {
                    addPhase(profile.windows[node.window_idx].totals,
                             node.phase, msOf(excl_ns));
                }
            }
        };

        for (const trace::SpanRecord *span : thread_spans) {
            // Close everything this span does not nest inside.
            while (!stack.empty() &&
                   span->start_ns >= stack.back().end_ns) {
                finalize(stack.back());
                stack.pop_back();
            }

            Node node;
            node.start_ns = span->start_ns;
            node.end_ns = span->start_ns + span->duration_ns;
            if (isContainer(span->name)) {
                // Only the outermost window container counts; a
                // cegis.window inside a compiler.window is transparent.
                bool inside_container = false;
                for (const Node &open : stack)
                    inside_container |= open.container;
                if (inside_container)
                    continue;
                node.container = true;
                node.window_idx =
                    static_cast<int>(profile.windows.size());
                WindowBreakdown win;
                win.container = span->name;
                win.start_ns = span->start_ns;
                profile.windows.push_back(std::move(win));
                stack.push_back(node);
                continue;
            }

            node.phase = phaseOf(span->name);
            // Attribute exclusively: this span's full duration is
            // subtracted from its nearest phase ancestor, so time is
            // counted once, at the innermost phase.
            for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
                if (!it->container) {
                    it->child_phase_ns += span->duration_ns;
                    break;
                }
            }
            for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
                if (it->container) {
                    node.window_idx = it->window_idx;
                    break;
                }
            }
            if (node.window_idx < 0)
                continue; // Phase work outside any window: ignored.
            stack.push_back(node);
        }
        while (!stack.empty()) {
            finalize(stack.back());
            stack.pop_back();
        }
    }

    for (const WindowBreakdown &win : profile.windows) {
        profile.aggregate.enumeration_ms += win.totals.enumeration_ms;
        profile.aggregate.concrete_eval_ms += win.totals.concrete_eval_ms;
        profile.aggregate.symbolic_ms += win.totals.symbolic_ms;
        profile.aggregate.sat_ms += win.totals.sat_ms;
        profile.aggregate.cache_lookup_ms += win.totals.cache_lookup_ms;
        profile.aggregate.other_ms += win.totals.other_ms;
        profile.aggregate.total_ms += win.totals.total_ms;
        profile.aggregate.windows += 1;
    }
    return profile;
}

PhaseProfile
profileCurrentTrace()
{
    return profilePhases(trace::snapshotSpans());
}

std::string
formatProfile(const PhaseProfile &profile, size_t top_windows)
{
    const PhaseTotals &agg = profile.aggregate;
    std::ostringstream os;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "phase breakdown (%llu windows, %.2f ms total)\n",
                  static_cast<unsigned long long>(agg.windows),
                  agg.total_ms);
    os << buf;
    const double denom = agg.total_ms > 0.0 ? agg.total_ms : 1.0;
    const struct
    {
        const char *label;
        double ms;
    } rows[] = {
        {"enumeration", agg.enumeration_ms},
        {"concrete eval", agg.concrete_eval_ms},
        {"symbolic verify", agg.symbolic_ms},
        {"SAT", agg.sat_ms},
        {"cache lookup", agg.cache_lookup_ms},
        {"other", agg.other_ms},
    };
    for (const auto &row : rows) {
        std::snprintf(buf, sizeof(buf), "  %-16s %10.2f ms  %5.1f%%\n",
                      row.label, row.ms, 100.0 * row.ms / denom);
        os << buf;
    }

    if (top_windows == 0 || profile.windows.empty())
        return os.str();

    std::vector<const WindowBreakdown *> slowest;
    slowest.reserve(profile.windows.size());
    for (const WindowBreakdown &win : profile.windows)
        slowest.push_back(&win);
    std::sort(slowest.begin(), slowest.end(),
              [](const WindowBreakdown *a, const WindowBreakdown *b) {
                  return a->totals.total_ms > b->totals.total_ms;
              });
    if (slowest.size() > top_windows)
        slowest.resize(top_windows);
    os << "slowest windows\n";
    for (size_t i = 0; i < slowest.size(); ++i) {
        const PhaseTotals &t = slowest[i]->totals;
        std::snprintf(
            buf, sizeof(buf),
            "  #%zu %s %.2f ms: enum %.2f | eval %.2f | sym %.2f | "
            "sat %.2f | cache %.2f | other %.2f\n",
            i + 1, slowest[i]->container.c_str(), t.total_ms,
            t.enumeration_ms, t.concrete_eval_ms, t.symbolic_ms, t.sat_ms,
            t.cache_lookup_ms, t.other_ms);
        os << buf;
    }
    return os.str();
}

} // namespace bench
} // namespace hydride
