/**
 * @file
 * Machine-readable benchmark reports: the `BENCH_*.json` trajectory.
 *
 * Every `bench/bench_*` binary emits one `BenchReport` (via the
 * shared `--json-out` flag, see bench/trace_cli.h): schema-versioned
 * JSON with per-benchmark wall/CPU time and iteration counts, the
 * metrics-registry snapshot (counters, gauges, histogram summaries
 * with p50/p90/p99), and the per-phase synthesis profile
 * (phase_profiler.h). `hydride-bench` merges the per-binary reports
 * into one `SuiteReport` — the committed `BENCH_<n>.json` files at
 * the repository root — and `compareReports` is the perf-regression
 * gate that diffs a run against the committed baseline.
 *
 * Schema identifier: "hydride-bench/v1". Parsers reject other
 * versions loudly rather than misreading them.
 */
#ifndef HYDRIDE_OBSERVABILITY_BENCH_BENCH_REPORT_H
#define HYDRIDE_OBSERVABILITY_BENCH_BENCH_REPORT_H

#include <string>
#include <vector>

#include "observability/bench/phase_profiler.h"
#include "observability/metrics.h"

namespace hydride {
namespace bench {

/** The schema identifier every artifact carries. */
extern const char *const kSchemaId; // "hydride-bench/v1"

/**
 * One measured quantity. `kind == "time"` entries (wall/CPU ms) are
 * what the regression gate compares; `kind == "ratio"` entries
 * (speedups, compression factors) are carried for trend analysis but
 * never gate — a ratio change is a result change, not a perf
 * regression.
 */
struct BenchEntry
{
    std::string name;     ///< e.g. "table4.x86.geomean_cold_ms"
    std::string kind = "time";
    double wall_ms = 0.0;
    double cpu_ms = 0.0;  ///< < 0 when not measured.
    double value = 0.0;   ///< Payload for kind == "ratio".
    long iterations = 1;
};

/** Histogram summary: the registry snapshot reduced to the numbers
 *  a perf trajectory needs (full bucket arrays stay in the trace
 *  artifacts). */
struct HistSummary
{
    std::string name;
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
};

/** Counters, gauges and histogram summaries at report time. */
struct MetricsSummary
{
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, int64_t>> gauges;
    std::vector<HistSummary> histograms;

    static MetricsSummary fromSnapshot(const metrics::Snapshot &snap);
};

/** One bench binary's report. */
struct BenchReport
{
    std::string suite;  ///< Binary name, e.g. "bench_table4_compile_times".
    bool smoke = false; ///< Reduced --smoke workload (not comparable
                        ///< against full-run numbers).
    std::vector<BenchEntry> benchmarks;
    bool has_phases = false;
    PhaseTotals phases;
    MetricsSummary metrics;

    std::string toJson(bool pretty = true) const;
    /** False + `error` on malformed input or schema mismatch. */
    static bool fromJson(const std::string &text, BenchReport &out,
                         std::string &error);
};

/** The merged artifact `hydride-bench` writes as BENCH_<n>.json. */
struct SuiteReport
{
    bool smoke = false;
    std::string label; ///< Free-form provenance ("full", "smoke", ...).
    std::vector<BenchReport> suites;

    std::string toJson(bool pretty = true) const;
    static bool fromJson(const std::string &text, SuiteReport &out,
                         std::string &error);

    /** Aggregate phase totals across all member reports. */
    PhaseTotals aggregatePhases() const;
};

// ---- Regression gate -------------------------------------------------------

struct CompareOptions
{
    /** Relative slowdown tolerated before a time entry is a
     *  regression (0.5 == 50% slower). Benchmarks in this repo run
     *  on shared machines; the default absorbs scheduler noise while
     *  still catching the order-of-magnitude changes perf PRs aim
     *  for. */
    double tolerance = 0.5;
    /** Absolute floor: ignore regressions smaller than this many ms
     *  (sub-millisecond entries jitter far beyond any ratio). */
    double min_abs_ms = 5.0;
    /** Baseline times are multiplied by this before comparison.
     *  1.0 in normal operation; the WILL_FAIL ctest gate self-test
     *  plants a regression by scaling the baseline down. */
    double scale_baseline = 1.0;
};

struct CompareFinding
{
    std::string suite;
    std::string name;
    double baseline_ms = 0.0; ///< After scale_baseline.
    double current_ms = 0.0;
    double ratio = 0.0;       ///< current / baseline.
};

struct CompareResult
{
    std::vector<CompareFinding> regressions;
    std::vector<CompareFinding> improvements; ///< Informational.
    int compared = 0;      ///< Time entries present in both reports.
    int only_baseline = 0; ///< Entries the current run lost.
    int only_current = 0;  ///< Entries the baseline predates.
    std::string error;     ///< Non-empty: reports not comparable.

    bool ok() const { return error.empty() && regressions.empty(); }
};

/**
 * Diff `current` against `baseline`. Time entries are matched by
 * (suite, name); a smoke report is never compared against a full
 * one (the workloads differ, set `error` instead of lying).
 */
CompareResult compareReports(const SuiteReport &baseline,
                             const SuiteReport &current,
                             const CompareOptions &options);

/** Render a compare result the way hydride-bench prints it. */
std::string formatCompare(const CompareResult &result,
                          const CompareOptions &options);

// ---- Timing helper ---------------------------------------------------------

/** Process CPU time (user+system) in milliseconds. */
double cpuTimeMs();

} // namespace bench
} // namespace hydride

#endif // HYDRIDE_OBSERVABILITY_BENCH_BENCH_REPORT_H
