#include "observability/metrics.h"

#include "support/env.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

namespace hydride {
namespace metrics {

namespace detail {
std::atomic<bool> g_enabled{false};
} // namespace detail

void
setEnabled(bool on)
{
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

// ---- Histogram -------------------------------------------------------------

struct Histogram::State
{
    mutable std::mutex mutex;
    std::vector<uint64_t> buckets; ///< bounds.size() + 1 (overflow last).
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
};

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), state_(new State)
{
    std::sort(bounds_.begin(), bounds_.end());
    state_->buckets.assign(bounds_.size() + 1, 0);
}

Histogram::~Histogram() { delete state_; }

void
Histogram::observe(double value)
{
    if (!enabled())
        return;
    // First bound >= value; everything above the last bound lands in
    // the implicit overflow bucket.
    size_t bucket = bounds_.size();
    for (size_t b = 0; b < bounds_.size(); ++b) {
        if (value <= bounds_[b]) {
            bucket = b;
            break;
        }
    }
    std::lock_guard<std::mutex> lock(state_->mutex);
    ++state_->buckets[bucket];
    if (state_->count == 0) {
        state_->min = value;
        state_->max = value;
    } else {
        state_->min = std::min(state_->min, value);
        state_->max = std::max(state_->max, value);
    }
    ++state_->count;
    state_->sum += value;
}

std::vector<uint64_t>
Histogram::bucketCounts() const
{
    std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->buckets;
}

uint64_t
Histogram::count() const
{
    std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->count;
}

double
Histogram::sum() const
{
    std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->sum;
}

double
Histogram::minValue() const
{
    std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->min;
}

double
Histogram::maxValue() const
{
    std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->max;
}

void
Histogram::reset()
{
    std::lock_guard<std::mutex> lock(state_->mutex);
    std::fill(state_->buckets.begin(), state_->buckets.end(), 0);
    state_->count = 0;
    state_->sum = 0.0;
    state_->min = 0.0;
    state_->max = 0.0;
}

const std::vector<double> &
defaultTimeBounds()
{
    // Seconds; spans 0.1ms .. 10s, the realistic per-window range.
    static const std::vector<double> bounds = {
        0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
        0.05,   0.1,     0.25,   0.5,   1.0,    2.5,   5.0,  10.0};
    return bounds;
}

std::vector<double>
logBounds(double lo, double hi, int per_decade)
{
    std::vector<double> bounds;
    if (!(lo > 0.0) || !(hi > lo) || per_decade < 1)
        return bounds;
    const double step = std::pow(10.0, 1.0 / per_decade);
    // Multiply up from lo; recompute from the exponent each time so
    // rounding error cannot accumulate across decades.
    for (int i = 0;; ++i) {
        const double bound = lo * std::pow(step, i);
        bounds.push_back(bound);
        if (bound >= hi)
            break;
        if (bounds.size() > 4096)
            break; // Defensive cap against degenerate arguments.
    }
    return bounds;
}

const std::vector<double> &
logTimeMsBounds()
{
    static const std::vector<double> bounds = logBounds(0.001, 1e5, 3);
    return bounds;
}

double
Snapshot::Hist::quantile(double q) const
{
    if (count == 0 || buckets.empty())
        return 0.0;
    q = std::min(1.0, std::max(0.0, q));
    const double target = q * static_cast<double>(count);
    uint64_t cumulative = 0;
    for (size_t b = 0; b < buckets.size(); ++b) {
        if (buckets[b] == 0)
            continue;
        const double before = static_cast<double>(cumulative);
        cumulative += buckets[b];
        if (static_cast<double>(cumulative) < target)
            continue;
        // Bucket b holds the target rank. Edges: bucket 0 starts at
        // the observed min, the overflow bucket ends at the observed
        // max.
        double lower = b == 0 ? min : bounds[b - 1];
        double upper = b < bounds.size() ? bounds[b] : max;
        lower = std::max(lower, min);
        upper = std::min(upper, max);
        if (upper < lower)
            upper = lower;
        const double fraction =
            buckets[b] == 0
                ? 0.0
                : (target - before) / static_cast<double>(buckets[b]);
        return lower + fraction * (upper - lower);
    }
    return max;
}

// ---- Registry --------------------------------------------------------------

namespace {

/** Intentionally leaked so exit-time exporters can always run. */
struct Registry
{
    std::mutex mutex;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry &
registry()
{
    static Registry *reg = new Registry;
    return *reg;
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 8);
    for (const char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** JSON numbers must not be NaN/Inf; histogram stats never are, but
 *  keep the formatter total. */
std::string
jsonNumber(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    return buf;
}

std::string &
exitPath()
{
    static std::string *path = new std::string;
    return *path;
}

void
writeAtExit()
{
    const std::string &path = exitPath();
    if (!path.empty())
        writeJson(path);
}

} // namespace

Counter &
counter(const std::string &name)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto &slot = reg.counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
gauge(const std::string &name)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto &slot = reg.gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
histogram(const std::string &name, const std::vector<double> &bounds)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto &slot = reg.histograms[name];
    if (!slot) {
        slot = std::make_unique<Histogram>(
            bounds.empty() ? defaultTimeBounds() : bounds);
    }
    return *slot;
}

Snapshot
snapshot()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    Snapshot snap;
    for (const auto &[name, c] : reg.counters)
        snap.counters.emplace_back(name, c->value());
    for (const auto &[name, g] : reg.gauges)
        snap.gauges.emplace_back(name, g->value());
    for (const auto &[name, h] : reg.histograms) {
        Snapshot::Hist hist;
        hist.name = name;
        hist.bounds = h->bounds();
        hist.buckets = h->bucketCounts();
        hist.count = h->count();
        hist.sum = h->sum();
        hist.min = h->minValue();
        hist.max = h->maxValue();
        snap.histograms.push_back(std::move(hist));
    }
    return snap;
}

std::string
exportJson()
{
    const Snapshot snap = snapshot();
    std::ostringstream os;
    os << "{\"counters\":{";
    for (size_t i = 0; i < snap.counters.size(); ++i) {
        if (i)
            os << ",";
        os << "\"" << jsonEscape(snap.counters[i].first)
           << "\":" << snap.counters[i].second;
    }
    os << "},\"gauges\":{";
    for (size_t i = 0; i < snap.gauges.size(); ++i) {
        if (i)
            os << ",";
        os << "\"" << jsonEscape(snap.gauges[i].first)
           << "\":" << snap.gauges[i].second;
    }
    os << "},\"histograms\":{";
    for (size_t i = 0; i < snap.histograms.size(); ++i) {
        const Snapshot::Hist &hist = snap.histograms[i];
        if (i)
            os << ",";
        os << "\"" << jsonEscape(hist.name) << "\":{\"bounds\":[";
        for (size_t b = 0; b < hist.bounds.size(); ++b) {
            if (b)
                os << ",";
            os << jsonNumber(hist.bounds[b]);
        }
        os << "],\"buckets\":[";
        for (size_t b = 0; b < hist.buckets.size(); ++b) {
            if (b)
                os << ",";
            os << hist.buckets[b];
        }
        os << "],\"count\":" << hist.count
           << ",\"sum\":" << jsonNumber(hist.sum)
           << ",\"min\":" << jsonNumber(hist.min)
           << ",\"max\":" << jsonNumber(hist.max) << "}";
    }
    os << "}}";
    return os.str();
}

std::string
exportText()
{
    const Snapshot snap = snapshot();
    std::ostringstream os;
    for (const auto &[name, value] : snap.counters)
        os << "counter  " << name << " = " << value << "\n";
    for (const auto &[name, value] : snap.gauges)
        os << "gauge    " << name << " = " << value << "\n";
    for (const Snapshot::Hist &hist : snap.histograms) {
        os << "histogram " << hist.name << ": count=" << hist.count
           << " sum=" << hist.sum << " min=" << hist.min
           << " max=" << hist.max << "\n";
        for (size_t b = 0; b < hist.buckets.size(); ++b) {
            if (hist.buckets[b] == 0)
                continue;
            os << "    le ";
            if (b < hist.bounds.size())
                os << hist.bounds[b];
            else
                os << "+inf";
            os << ": " << hist.buckets[b] << "\n";
        }
    }
    return os.str();
}

bool
writeJson(const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << exportJson() << "\n";
    return static_cast<bool>(out);
}

void
resetValues()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (auto &[name, c] : reg.counters)
        c->reset();
    for (auto &[name, g] : reg.gauges)
        g->reset();
    for (auto &[name, h] : reg.histograms)
        h->reset();
}

void
configureFromEnv()
{
    const env::Toggle knob = env::toggle("HYDRIDE_METRICS");
    if (!knob.set)
        return;
    if (!knob.enabled) {
        setEnabled(false);
        return;
    }
    setEnabled(true);
    const std::string path =
        knob.path.empty()
            ? env::defaultArtifactPath("hydride_metrics", "json")
            : knob.path;
    const bool was_registered = !exitPath().empty();
    exitPath() = path;
    if (!was_registered)
        std::atexit(writeAtExit);
}

namespace {
/** Apply the environment before main() runs. */
struct EnvInit
{
    EnvInit() { configureFromEnv(); }
} env_init;
} // namespace

} // namespace metrics
} // namespace hydride
