/**
 * @file
 * Process-wide metrics registry for the Hydride pipeline: named
 * counters, gauges and fixed-bucket histograms, all following the
 * `phase.component.event` naming convention (for example
 * `synthesis.cache.hits`, `synthesis.window.seconds`).
 *
 * Instruments are registered on first use and live for the process
 * lifetime, so call sites may cache the returned reference:
 *
 *     static metrics::Counter &hits =
 *         metrics::counter("synthesis.cache.hits");
 *     hits.add();
 *
 * Recording is off by default; when disabled each instrument costs a
 * single relaxed atomic load. Enable programmatically with
 * `metrics::setEnabled(true)` or via the environment:
 *
 *   HYDRIDE_METRICS=1       enable; write hydride_metrics.<pid>.json
 *                           into $HYDRIDE_TRACE_DIR (or the CWD) at
 *                           process exit
 *   HYDRIDE_METRICS=<path>  enable; write the JSON snapshot to <path>
 *   HYDRIDE_METRICS=0       force-disable
 *
 * Counters are unsigned 64-bit and wrap modulo 2^64 on overflow
 * (standard unsigned semantics; covered by tests).
 */
#ifndef HYDRIDE_OBSERVABILITY_METRICS_H
#define HYDRIDE_OBSERVABILITY_METRICS_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace hydride {
namespace metrics {

namespace detail {
extern std::atomic<bool> g_enabled;
} // namespace detail

/** True when instruments are recording (single relaxed load). */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/** Turn metric recording on or off at runtime. */
void setEnabled(bool on);

/** Monotonic event counter (wraps modulo 2^64). */
class Counter
{
  public:
    void
    add(uint64_t n = 1)
    {
        if (enabled())
            value_.fetch_add(n, std::memory_order_relaxed);
    }
    uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Last-write-wins signed gauge. */
class Gauge
{
  public:
    void
    set(int64_t value)
    {
        if (enabled())
            value_.store(value, std::memory_order_relaxed);
    }
    int64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> value_{0};
};

/**
 * Fixed-bucket histogram. Bucket `i` counts observations with
 * `value <= bounds[i]` (first matching bound); one implicit overflow
 * bucket counts everything above the last bound. Also tracks count,
 * sum, min and max of all observations.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<double> bounds);
    ~Histogram();
    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

    void observe(double value);

    const std::vector<double> &bounds() const { return bounds_; }
    /** Per-bucket counts; size bounds().size() + 1 (last = overflow). */
    std::vector<uint64_t> bucketCounts() const;
    uint64_t count() const;
    double sum() const;
    double minValue() const; ///< 0 when empty.
    double maxValue() const; ///< 0 when empty.
    void reset();

  private:
    struct State;
    std::vector<double> bounds_;
    State *state_;
};

/** Upper bounds (seconds) used when a histogram is registered
 *  without explicit bounds — tuned for per-window synthesis times. */
const std::vector<double> &defaultTimeBounds();

/**
 * Log-scale bucket bounds: geometrically spaced from `lo` to at
 * least `hi` with `per_decade` bounds per factor of ten. Linear
 * buckets collapse sub-millisecond CEGIS timings into one bin; a
 * log scale keeps resolution constant across orders of magnitude.
 * Requires lo > 0, hi > lo, per_decade >= 1.
 */
std::vector<double> logBounds(double lo, double hi, int per_decade);

/** Shared log-scale bounds for `*.time_ms` histograms: 1µs .. 100s
 *  (as milliseconds), three bounds per decade. */
const std::vector<double> &logTimeMsBounds();

// ---- Registry --------------------------------------------------------------

/** Find-or-create by name. References stay valid for the process
 *  lifetime (resetValues() zeroes them but never removes them). */
Counter &counter(const std::string &name);
Gauge &gauge(const std::string &name);
Histogram &histogram(const std::string &name,
                     const std::vector<double> &bounds = {});

/** Point-in-time copy of every registered instrument. */
struct Snapshot
{
    struct Hist
    {
        std::string name;
        std::vector<double> bounds;
        std::vector<uint64_t> buckets; ///< bounds.size() + 1 entries.
        uint64_t count = 0;
        double sum = 0.0;
        double min = 0.0;
        double max = 0.0;

        /**
         * Estimated q-quantile (q in [0,1]) by linear interpolation
         * within the bucket containing the target rank, clamped to
         * the observed [min, max]. Exact at bucket edges; within a
         * bucket the error is bounded by the bucket width (which the
         * log-scale bounds keep proportional to the value). 0 when
         * the histogram is empty.
         */
        double quantile(double q) const;
    };
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, int64_t>> gauges;
    std::vector<Hist> histograms;
};

Snapshot snapshot();

/** Snapshot as JSON: {"counters":{...},"gauges":{...},"histograms":{...}}. */
std::string exportJson();

/** Snapshot as aligned human-readable text. */
std::string exportText();

/** Write exportJson() to `path`; false on IO error. */
bool writeJson(const std::string &path);

/** Zero every instrument, keeping registrations (and references). */
void resetValues();

/** (Re)read HYDRIDE_METRICS and apply it. Runs automatically before
 *  main(); callable again from tests. */
void configureFromEnv();

} // namespace metrics
} // namespace hydride

#endif // HYDRIDE_OBSERVABILITY_METRICS_H
