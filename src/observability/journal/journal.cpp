#include "observability/journal/journal.h"

#include "observability/log.h"
#include "support/env.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>

#ifdef _WIN32
#include <process.h>
#define HYDRIDE_GETPID _getpid
#else
#include <unistd.h>
#define HYDRIDE_GETPID getpid
#endif

namespace hydride {
namespace journal {

const char *const kSchema = "hydride-journal/v1";
const char *const kFlightSchema = "hydride-flight/v1";

namespace detail {
std::atomic<bool> g_enabled{false};
} // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

/** Process-wide journal epoch; every t_ms is relative to it. */
Clock::time_point
epoch()
{
    static const Clock::time_point start = Clock::now();
    return start;
}

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(Clock::now() - epoch())
        .count();
}

/** Events flush in batches; the threshold bounds loss on a crash
 *  between barriers while keeping fwrite off nearly every emit. */
constexpr size_t kFlushBatch = 64;

constexpr size_t kDefaultFlightCapacity = 128;

/** One ring entry: the parsed event (for flight splicing) plus its
 *  envelope seq (for cross-thread ordering at dump time). */
struct RingEntry
{
    uint64_t seq = 0;
    bjson::ValuePtr event;
};

/**
 * Per-thread sink. The mutex is per-buffer, so the emit hot path
 * never contends with other threads — only with an exit-time flush
 * or flight dump walking the registry.
 */
struct ThreadBuffer
{
    std::mutex mutex;
    uint64_t tid = 0;
    std::vector<std::string> pending; ///< Serialized lines not yet on disk.
    std::deque<RingEntry> ring;       ///< Flight recorder, newest last.
};

/**
 * Global state. Intentionally leaked so atexit flushing works
 * regardless of static-destruction order. Lock order everywhere:
 * registry -> thread -> file.
 */
struct Core
{
    std::mutex registry_mutex;
    std::vector<std::shared_ptr<ThreadBuffer>> threads;
    std::atomic<uint64_t> next_tid{1};
    std::atomic<uint64_t> next_seq{1};
    std::atomic<size_t> flight_capacity{kDefaultFlightCapacity};

    std::mutex file_mutex;
    std::FILE *file = nullptr;
    std::string path;
    std::string flight_dir;
};

Core &
core()
{
    static Core *c = new Core;
    return *c;
}

/** Append lines to the journal file, opening it (and writing the
 *  header line) on first use. Caller holds no locks. */
void
writeLines(const std::vector<std::string> &lines)
{
    if (lines.empty())
        return;
    Core &c = core();
    std::lock_guard<std::mutex> lock(c.file_mutex);
    if (c.path.empty())
        return; // Flight-only mode: the ring is the only sink.
    if (!c.file) {
        c.file = std::fopen(c.path.c_str(), "w");
        if (!c.file) {
            HYD_LOG(Warn, "[journal] cannot open `" + c.path +
                              "`; journal disabled");
            c.path.clear();
            detail::g_enabled.store(false, std::memory_order_relaxed);
            return;
        }
        auto header = bjson::Value::makeObject();
        header->set("schema", bjson::Value::makeString(kSchema));
        header->set("kind", bjson::Value::makeString("header"));
        header->set("pid", bjson::Value::makeNumber(
                               static_cast<double>(HYDRIDE_GETPID())));
        const std::string line = bjson::write(*header);
        std::fwrite(line.data(), 1, line.size(), c.file);
        std::fputc('\n', c.file);
    }
    for (const std::string &line : lines) {
        std::fwrite(line.data(), 1, line.size(), c.file);
        std::fputc('\n', c.file);
    }
    // Whole lines reach the kernel at every flush, so a crash can
    // lose at most the events still buffered per thread — never
    // produce an interior torn line.
    std::fflush(c.file);
}

/** Drain one thread's pending lines (takes its mutex, then writes). */
void
flushBuffer(ThreadBuffer &buf)
{
    std::vector<std::string> batch;
    {
        std::lock_guard<std::mutex> lock(buf.mutex);
        batch.swap(buf.pending);
    }
    writeLines(batch);
}

void
flushAtExit()
{
    flush();
    Core &c = core();
    std::lock_guard<std::mutex> lock(c.file_mutex);
    if (c.file) {
        std::fclose(c.file);
        c.file = nullptr;
    }
}

/** The calling thread's buffer; registered once, flushed at thread
 *  exit. The registry's shared_ptr keeps the ring alive after the
 *  thread dies, so late flight dumps still see its events. */
ThreadBuffer &
threadBuffer()
{
    struct Holder
    {
        std::shared_ptr<ThreadBuffer> buf;
        Holder()
        {
            Core &c = core();
            buf = std::make_shared<ThreadBuffer>();
            buf->tid = c.next_tid.fetch_add(1);
            std::lock_guard<std::mutex> lock(c.registry_mutex);
            c.threads.push_back(buf);
        }
        ~Holder() { flushBuffer(*buf); }
    };
    thread_local Holder holder;
    return *holder.buf;
}

/** Stamp the envelope and enqueue. `event` already holds the
 *  payload-specific keys *after* the envelope slots set here. */
void
enqueue(const bjson::ValuePtr &event)
{
    Core &c = core();
    ThreadBuffer &buf = threadBuffer();
    const uint64_t seq = c.next_seq.fetch_add(1);
    event->set("seq", bjson::Value::makeNumber(static_cast<double>(seq)));
    event->set("thread",
               bjson::Value::makeNumber(static_cast<double>(buf.tid)));
    event->set("t_ms", bjson::Value::makeNumber(nowMs()));
    const std::string line = bjson::write(*event);
    const size_t capacity = c.flight_capacity.load(std::memory_order_relaxed);
    bool do_flush = false;
    {
        std::lock_guard<std::mutex> lock(buf.mutex);
        buf.pending.push_back(line);
        buf.ring.push_back({seq, event});
        while (buf.ring.size() > capacity)
            buf.ring.pop_front();
        do_flush = buf.pending.size() >= kFlushBatch;
    }
    if (do_flush)
        flushBuffer(buf);
}

/** Fresh event envelope: kind first, seq/thread/t_ms filled by
 *  enqueue() (insertion order keeps the envelope keys leading). */
bjson::ValuePtr
makeEnvelope(const char *kind)
{
    auto event = bjson::Value::makeObject();
    event->set("kind", bjson::Value::makeString(kind));
    event->set("seq", bjson::Value::makeNumber(0));
    event->set("thread", bjson::Value::makeNumber(0));
    event->set("t_ms", bjson::Value::makeNumber(0));
    return event;
}

std::string
flightPath(const Core &c)
{
    const std::string dir = c.flight_dir.empty() ? env::artifactDir()
                                                 : c.flight_dir;
    return dir + "/hydride-flight-" + std::to_string(HYDRIDE_GETPID()) +
           ".json";
}

} // namespace

void
setEnabled(bool on)
{
    if (on)
        epoch(); // Pin the epoch no later than the first enable.
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

std::string
hashHex(uint64_t hash)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash));
    return buf;
}

void
emitEvent(const char *kind, const bjson::ValuePtr &fields)
{
    if (!enabled())
        return;
    auto event = makeEnvelope(kind);
    if (fields && fields->isObject()) {
        for (size_t i = 0; i < fields->keys.size(); ++i)
            event->set(fields->keys[i], fields->values[i]);
    }
    enqueue(event);
}

void
emitWindow(const WindowLedger &ledger)
{
    if (!enabled())
        return;
    auto event = makeEnvelope("window");
    event->set("hash", bjson::Value::makeString(ledger.window_hash));
    event->set("isa", bjson::Value::makeString(ledger.isa));
    auto shape = bjson::Value::makeObject();
    shape->set("lanes", bjson::Value::makeNumber(ledger.lanes));
    shape->set("elem_width", bjson::Value::makeNumber(ledger.elem_width));
    shape->set("nodes", bjson::Value::makeNumber(ledger.nodes));
    event->set("shape", shape);
    event->set("cache", bjson::Value::makeString(ledger.cache));
    event->set("rung", bjson::Value::makeString(ledger.rung));
    if (ledger.store_seeds > 0)
        event->set("store_seeds",
                   bjson::Value::makeNumber(ledger.store_seeds));
    if (ledger.warm_started)
        event->set("warm_started", bjson::Value::makeBool(true));
    auto cegis = bjson::Value::makeObject();
    cegis->set("iterations",
               bjson::Value::makeNumber(ledger.cegis_iterations));
    cegis->set("counterexamples",
               bjson::Value::makeNumber(ledger.counterexamples));
    cegis->set("rejected",
               bjson::Value::makeNumber(ledger.candidates_rejected));
    cegis->set("rejected_static",
               bjson::Value::makeNumber(ledger.candidates_rejected_static));
    cegis->set("symbolic_refutations",
               bjson::Value::makeNumber(ledger.symbolic_refutations));
    cegis->set("symbolic_unknowns",
               bjson::Value::makeNumber(ledger.symbolic_unknowns));
    cegis->set("verdict",
               bjson::Value::makeString(ledger.symbolic_verdict));
    event->set("cegis", cegis);
    if (!ledger.note.empty())
        event->set("note", bjson::Value::makeString(ledger.note));
    event->set("retries", bjson::Value::makeNumber(ledger.retries));
    event->set("recovered", bjson::Value::makeBool(ledger.recovered));
    event->set("cost", bjson::Value::makeNumber(ledger.cost));
    auto insts = bjson::Value::makeArray();
    for (const std::string &name : ledger.insts)
        insts->push(bjson::Value::makeString(name));
    event->set("insts", insts);
    auto faults = bjson::Value::makeArray();
    for (const auto &[site, what] : ledger.faults) {
        auto entry = bjson::Value::makeObject();
        entry->set("site", bjson::Value::makeString(site));
        entry->set("detail", bjson::Value::makeString(what));
        faults->push(entry);
    }
    event->set("faults", faults);
    event->set("wall_ms", bjson::Value::makeNumber(ledger.wall_ms));
    event->set("cpu_ms", bjson::Value::makeNumber(ledger.cpu_ms));
    enqueue(event);
}

void
flush()
{
    Core &c = core();
    std::vector<std::shared_ptr<ThreadBuffer>> threads;
    {
        std::lock_guard<std::mutex> lock(c.registry_mutex);
        threads = c.threads;
    }
    for (const auto &buf : threads)
        flushBuffer(*buf);
}

void
setOutputPath(const std::string &path)
{
    flush();
    Core &c = core();
    std::lock_guard<std::mutex> lock(c.file_mutex);
    if (c.file) {
        std::fclose(c.file);
        c.file = nullptr;
    }
    c.path = path;
}

std::string
outputPath()
{
    Core &c = core();
    std::lock_guard<std::mutex> lock(c.file_mutex);
    return c.path;
}

void
setFlightDir(const std::string &dir)
{
    Core &c = core();
    std::lock_guard<std::mutex> lock(c.file_mutex);
    c.flight_dir = dir;
}

std::string
flightDir()
{
    Core &c = core();
    std::lock_guard<std::mutex> lock(c.file_mutex);
    return c.flight_dir.empty() ? env::artifactDir() : c.flight_dir;
}

void
setFlightCapacity(size_t capacity)
{
    core().flight_capacity.store(capacity > 0 ? capacity : 1,
                                 std::memory_order_relaxed);
}

size_t
flightCapacity()
{
    return core().flight_capacity.load(std::memory_order_relaxed);
}

std::string
flightDump(const std::string &reason)
{
    if (!enabled())
        return "";
    flush(); // The on-disk journal is complete up to this dump.
    Core &c = core();
    std::vector<RingEntry> entries;
    {
        std::lock_guard<std::mutex> registry_lock(c.registry_mutex);
        for (const auto &buf : c.threads) {
            std::lock_guard<std::mutex> lock(buf->mutex);
            entries.insert(entries.end(), buf->ring.begin(),
                           buf->ring.end());
        }
    }
    std::sort(entries.begin(), entries.end(),
              [](const RingEntry &a, const RingEntry &b) {
                  return a.seq < b.seq;
              });
    const size_t capacity =
        c.flight_capacity.load(std::memory_order_relaxed);
    if (entries.size() > capacity)
        entries.erase(entries.begin(),
                      entries.end() - static_cast<long>(capacity));
    auto doc = bjson::Value::makeObject();
    doc->set("schema", bjson::Value::makeString(kFlightSchema));
    doc->set("kind", bjson::Value::makeString("flight"));
    doc->set("pid", bjson::Value::makeNumber(
                        static_cast<double>(HYDRIDE_GETPID())));
    doc->set("reason", bjson::Value::makeString(reason));
    doc->set("t_ms", bjson::Value::makeNumber(nowMs()));
    auto events = bjson::Value::makeArray();
    for (const RingEntry &entry : entries)
        events->push(entry.event);
    doc->set("events", events);
    const std::string path = flightPath(c);
    std::ofstream out(path);
    if (!out) {
        HYD_LOG(Warn, "[journal] cannot write flight dump `" + path + "`");
        return "";
    }
    out << bjson::writePretty(*doc) << "\n";
    if (!out) {
        HYD_LOG(Warn, "[journal] short write on flight dump `" + path +
                          "`");
        return "";
    }
    return path;
}

void
resetForTest()
{
    Core &c = core();
    std::vector<std::shared_ptr<ThreadBuffer>> threads;
    {
        std::lock_guard<std::mutex> lock(c.registry_mutex);
        threads = c.threads;
    }
    for (const auto &buf : threads) {
        std::lock_guard<std::mutex> lock(buf->mutex);
        buf->pending.clear();
        buf->ring.clear();
    }
    std::lock_guard<std::mutex> lock(c.file_mutex);
    if (c.file) {
        std::fclose(c.file);
        c.file = nullptr;
    }
    c.path.clear();
    c.flight_dir.clear();
    c.flight_capacity.store(kDefaultFlightCapacity);
    detail::g_enabled.store(false, std::memory_order_relaxed);
}

void
configureFromEnv()
{
    const env::Raw flight_dir = env::raw("HYDRIDE_FLIGHT_DIR");
    if (flight_dir.set && !flight_dir.value.empty())
        setFlightDir(flight_dir.value);
    const env::Toggle knob = env::toggle("HYDRIDE_JOURNAL");
    if (!knob.set)
        return;
    if (!knob.enabled) {
        setEnabled(false);
        return;
    }
    setEnabled(true);
    // The pid-suffixed default keeps parallel test runs from
    // clobbering each other, same as trace/metrics artifacts.
    setOutputPath(knob.path.empty()
                      ? env::defaultArtifactPath("hydride_journal", "jsonl")
                      : knob.path);
}

Journal
readJournal(const std::string &path)
{
    Journal journal;
    std::ifstream in(path);
    if (!in) {
        journal.error = "cannot open `" + path + "`";
        return journal;
    }
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    // Drop trailing blank lines (a final "\n" is the normal case).
    while (!lines.empty() && lines.back().find_first_not_of(" \t\r") ==
                                 std::string::npos) {
        lines.pop_back();
    }
    if (lines.empty()) {
        journal.error = "`" + path + "` is empty";
        return journal;
    }
    for (size_t i = 0; i < lines.size(); ++i) {
        std::string why;
        bjson::ValuePtr value = bjson::parse(lines[i], why);
        if (!value || !value->isObject()) {
            if (i + 1 == lines.size() && i > 0) {
                // The process died mid-write; the good prefix stands.
                journal.truncated = true;
                return journal;
            }
            journal.error = "line " + std::to_string(i + 1) + ": " +
                            (value ? "not an object" : why);
            journal.header = nullptr;
            journal.events.clear();
            return journal;
        }
        if (i == 0) {
            if (value->getString("schema", "") != kSchema ||
                value->getString("kind", "") != "header") {
                journal.error =
                    "`" + path + "` is not a " + kSchema + " journal";
                return journal;
            }
            journal.header = value;
        } else {
            journal.events.push_back(value);
        }
    }
    return journal;
}

namespace {
/** Apply the environment before main() runs; the atexit flush is
 *  registered unconditionally so programmatic setEnabled() (tests,
 *  the chaos harness) gets the same end-of-process drain. */
struct EnvInit
{
    EnvInit()
    {
        configureFromEnv();
        std::atexit(flushAtExit);
    }
} env_init;
} // namespace

} // namespace journal
} // namespace hydride
