/**
 * @file
 * Synthesis provenance journal and crash-safe flight recorder.
 *
 * The journal is an append-only, schema-versioned event stream
 * (`hydride-journal/v1`, JSON Lines): one header line, then one
 * self-contained JSON object per event. Every compiled window emits a
 * *decision ledger* — window hash and shape, cache outcome, CEGIS
 * effort, symbolic verdict, degradation rung, chosen instructions and
 * cost, injected faults, wall/CPU time — so `hydride-inspect` can
 * reconstruct *why* the compiler produced what it produced without
 * re-running synthesis.
 *
 * Hot-path discipline matches trace/metrics: when HYDRIDE_JOURNAL is
 * unset, every emit site folds to one relaxed atomic load. When
 * enabled, events append to a per-thread buffer (its mutex is only
 * ever contended by an exit-time flush), and the global registry
 * mutex is touched only at thread registration, flush() and
 * flightDump().
 *
 * The flight recorder is a bounded per-thread ring of the most recent
 * events. Error barriers (src/driver/resilience.cpp) call
 * flightDump() when a window trips, writing the merged ring as a
 * single `hydride-flight/v1` document — a crash-box of the decisions
 * leading up to the failure, valid even when the process dies before
 * the journal's atexit flush.
 */
#ifndef HYDRIDE_OBSERVABILITY_JOURNAL_JOURNAL_H
#define HYDRIDE_OBSERVABILITY_JOURNAL_JOURNAL_H

#include "observability/bench/json.h"

#include <atomic>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace hydride {
namespace journal {

/** Schema tag on the journal header line. */
extern const char *const kSchema;
/** Schema tag on a flight-recorder dump document. */
extern const char *const kFlightSchema;

namespace detail {
extern std::atomic<bool> g_enabled;
} // namespace detail

/** One relaxed load; every emit site guards on this. */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

void setEnabled(bool on);

/**
 * The decision ledger for one compiled window. Field-for-field this
 * is what `hydride-inspect explain <hash>` prints; emitters fill what
 * they know and leave the rest defaulted.
 */
struct WindowLedger
{
    std::string window_hash; ///< HExpr::hashOf of the window, hex.
    std::string isa;         ///< Target ISA the window compiled for.
    int lanes = 0;
    int elem_width = 0;
    int nodes = 0;           ///< HExpr::sizeOf of the window.
    std::string cache;       ///< "hit" | "miss" | "negative" |
                             ///< "store_hit" | "store_negative".
    int store_seeds = 0;     ///< Warm-start seeds retrieved from the
                             ///< durable store for this window.
    bool warm_started = false; ///< A verified seed skipped the search.
    std::string rung;        ///< Degradation-ladder outcome.
    int cegis_iterations = 0;
    int counterexamples = 0;
    int candidates_rejected = 0;
    /** Candidates the abstract-interpretation tier pruned before any
     *  counterexample evaluation. */
    int candidates_rejected_static = 0;
    int symbolic_refutations = 0;
    int symbolic_unknowns = 0;
    std::string symbolic_verdict; ///< "" when the checker never ran.
    std::string note;             ///< Synthesizer's failure note, if any.
    int retries = 0;
    bool recovered = false;  ///< An error barrier caught something.
    double cost = 0.0;       ///< Cost-model score of the chosen program.
    std::vector<std::string> insts; ///< Chosen instruction names, in order.
    /** Injected-fault diagnostics attributed to this window (site, detail). */
    std::vector<std::pair<std::string, std::string>> faults;
    double wall_ms = 0.0;
    double cpu_ms = 0.0;
};

/** Canonical spelling of a window hash (16 lowercase hex digits) —
 *  the key `hydride-inspect explain` takes on its command line. */
std::string hashHex(uint64_t hash);

/** Emit one "window" event. No-op when the journal is disabled. */
void emitWindow(const WindowLedger &ledger);

/**
 * Emit a free-form event of the given kind. `fields` must be an
 * Object (or null for an envelope-only event); its members are
 * spliced into the event line after the envelope keys
 * (kind/seq/thread/t_ms). No-op when disabled.
 */
void emitEvent(const char *kind, const bjson::ValuePtr &fields);

/** Drain every thread's pending buffer to the journal file. */
void flush();

/**
 * Journal file path. Empty means flight-only mode: events still feed
 * the flight ring but nothing is written until flightDump(). Setting
 * a new path closes the previous file (after flushing into it).
 */
void setOutputPath(const std::string &path);
std::string outputPath();

/** Directory flight dumps land in (default: env::artifactDir()). */
void setFlightDir(const std::string &dir);
std::string flightDir();

/** Per-thread flight-ring capacity (default 128 events). */
void setFlightCapacity(size_t capacity);
size_t flightCapacity();

/**
 * Write the flight ring as `hydride-flight-<pid>.json` under
 * flightDir(): a single `hydride-flight/v1` document whose `events`
 * array holds the merged rings, seq-ordered. Also flushes the
 * journal first, so the on-disk stream is complete up to the dump.
 * Returns the path written, or "" when disabled or the write failed.
 */
std::string flightDump(const std::string &reason);

/** Drop buffered events, close the file, clear paths (unit tests). */
void resetForTest();

/** HYDRIDE_JOURNAL / HYDRIDE_FLIGHT_DIR hookup (pre-main). */
void configureFromEnv();

// ---- Reading (hydride-inspect, validators, tests) --------------------------

/** A parsed journal file. */
struct Journal
{
    bjson::ValuePtr header;              ///< The header line.
    std::vector<bjson::ValuePtr> events; ///< Every event line, in file order.
    bool truncated = false; ///< A trailing partial line was dropped.
    std::string error;      ///< Non-empty when the file is unusable.
};

/**
 * Load a `hydride-journal/v1` file. A malformed *final* line is
 * salvage (the process died mid-write): `truncated` is set and the
 * good prefix returned. A malformed line elsewhere, a missing file,
 * or a bad header is an error.
 */
Journal readJournal(const std::string &path);

} // namespace journal
} // namespace hydride

#endif // HYDRIDE_OBSERVABILITY_JOURNAL_JOURNAL_H
