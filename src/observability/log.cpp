#include "observability/log.h"

#include "support/env.h"

#include <iostream>
#include <mutex>

namespace hydride {
namespace logging {

namespace detail {
std::atomic<int> g_level{static_cast<int>(Level::Warn)};
} // namespace detail

namespace {

std::mutex &
sinkMutex()
{
    static std::mutex mutex;
    return mutex;
}

const char *
levelName(Level at)
{
    switch (at) {
    case Level::Debug: return "debug";
    case Level::Info: return "info";
    case Level::Warn: return "warning";
    case Level::Error: return "error";
    case Level::Off: break;
    }
    return "log";
}

} // namespace

void
setLevel(Level level)
{
    detail::g_level.store(static_cast<int>(level),
                          std::memory_order_relaxed);
}

void
write(Level at, const std::string &message)
{
    writeRaw(std::string("hydride: ") + levelName(at) + ": " + message);
}

void
writeRaw(const std::string &line)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    std::cerr << line << std::endl;
}

bool
parseLevel(const std::string &text, Level &out)
{
    if (text == "debug" || text == "0") {
        out = Level::Debug;
    } else if (text == "info" || text == "1") {
        out = Level::Info;
    } else if (text == "warn" || text == "warning" || text == "2") {
        out = Level::Warn;
    } else if (text == "error" || text == "3") {
        out = Level::Error;
    } else if (text == "off" || text == "none" || text == "4") {
        out = Level::Off;
    } else {
        return false;
    }
    return true;
}

void
configureFromEnv()
{
    // Legacy switch: any enabled boolean spelling means `debug`.
    const env::Raw synth_debug = env::raw("HYDRIDE_SYNTH_DEBUG");
    if (synth_debug.set && !synth_debug.value.empty()) {
        bool on = false;
        if (env::parseBool(synth_debug.value, on)) {
            if (on)
                setLevel(Level::Debug);
        } else {
            write(Level::Warn,
                  "unrecognized HYDRIDE_SYNTH_DEBUG `" +
                      synth_debug.value + "` (want a boolean)");
        }
    }
    const env::Raw level_knob = env::raw("HYDRIDE_LOG_LEVEL");
    if (level_knob.set) {
        Level parsed;
        if (parseLevel(level_knob.value, parsed))
            setLevel(parsed);
        else
            write(Level::Warn, "unrecognized HYDRIDE_LOG_LEVEL `" +
                                   level_knob.value +
                                   "` (want debug|info|warn|error|off)");
    }
}

namespace {
/** Apply the environment before main() runs. */
struct EnvInit
{
    EnvInit() { configureFromEnv(); }
} env_init;
} // namespace

} // namespace logging
} // namespace hydride
