#include "observability/trace.h"

#include "support/env.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>

namespace hydride {
namespace trace {

namespace detail {
std::atomic<bool> g_enabled{false};
} // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

/** Process-wide trace epoch; all span timestamps are relative to it. */
Clock::time_point
epoch()
{
    static const Clock::time_point start = Clock::now();
    return start;
}

uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             epoch())
            .count());
}

/** Event log. Intentionally leaked so the atexit exporter can run
 *  regardless of static-destruction order. */
struct EventLog
{
    std::mutex mutex;
    std::vector<SpanRecord> spans;
};

EventLog &
eventLog()
{
    static EventLog *log = new EventLog;
    return *log;
}

/** Small per-process thread ordinal (stable, compact tids). */
uint64_t
threadId()
{
    static std::atomic<uint64_t> next{1};
    thread_local uint64_t id = next.fetch_add(1);
    return id;
}

/** Per-thread open-span depth; children inherit depth+1. */
int &
threadDepth()
{
    thread_local int depth = 0;
    return depth;
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 8);
    for (const char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Exit-time export path; empty when env export is off. */
std::string &
exitPath()
{
    static std::string *path = new std::string;
    return *path;
}

void
writeAtExit()
{
    const std::string &path = exitPath();
    if (!path.empty())
        writeChromeJson(path);
}

} // namespace

void
setEnabled(bool on)
{
    if (on)
        epoch(); // Pin the epoch no later than the first enable.
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

TraceSpan::TraceSpan(const char *name)
{
    if (!enabled())
        return;
    active_ = true;
    name_ = name;
    depth_ = threadDepth()++;
    start_ns_ = nowNs();
}

TraceSpan::~TraceSpan()
{
    if (!active_)
        return;
    const uint64_t end_ns = nowNs();
    --threadDepth();
    SpanRecord record;
    record.name = std::move(name_);
    record.thread_id = threadId();
    record.depth = depth_;
    record.start_ns = start_ns_;
    record.duration_ns = end_ns - start_ns_;
    record.attrs = std::move(attrs_);
    EventLog &log = eventLog();
    std::lock_guard<std::mutex> lock(log.mutex);
    log.spans.push_back(std::move(record));
}

void
TraceSpan::setAttr(const std::string &key, const std::string &value)
{
    if (!active_)
        return;
    attrs_.emplace_back(key, value);
}

void
TraceSpan::setAttr(const std::string &key, const char *value)
{
    setAttr(key, std::string(value));
}

void
TraceSpan::setAttr(const std::string &key, int64_t value)
{
    setAttr(key, std::to_string(value));
}

void
TraceSpan::setAttr(const std::string &key, int value)
{
    setAttr(key, std::to_string(value));
}

void
TraceSpan::setAttr(const std::string &key, double value)
{
    if (!active_)
        return;
    std::ostringstream os;
    os << value;
    attrs_.emplace_back(key, os.str());
}

void
TraceSpan::setAttr(const std::string &key, bool value)
{
    setAttr(key, std::string(value ? "true" : "false"));
}

void
reset()
{
    EventLog &log = eventLog();
    std::lock_guard<std::mutex> lock(log.mutex);
    log.spans.clear();
}

std::vector<SpanRecord>
snapshotSpans()
{
    EventLog &log = eventLog();
    std::lock_guard<std::mutex> lock(log.mutex);
    return log.spans;
}

std::string
exportChromeJson()
{
    const std::vector<SpanRecord> spans = snapshotSpans();
    std::ostringstream os;
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const SpanRecord &span : spans) {
        if (!first)
            os << ",";
        first = false;
        // Complete ("X") events; ts/dur are microseconds (with the
        // nanosecond remainder as a correctly padded fraction).
        char ts[32];
        char dur[32];
        std::snprintf(ts, sizeof(ts), "%llu.%03llu",
                      static_cast<unsigned long long>(span.start_ns / 1000),
                      static_cast<unsigned long long>(span.start_ns % 1000));
        std::snprintf(dur, sizeof(dur), "%llu.%03llu",
                      static_cast<unsigned long long>(span.duration_ns / 1000),
                      static_cast<unsigned long long>(span.duration_ns %
                                                      1000));
        os << "{\"name\":\"" << jsonEscape(span.name)
           << "\",\"ph\":\"X\",\"cat\":\"hydride\",\"pid\":1,\"tid\":"
           << span.thread_id << ",\"ts\":" << ts << ",\"dur\":" << dur;
        if (!span.attrs.empty()) {
            os << ",\"args\":{";
            for (size_t a = 0; a < span.attrs.size(); ++a) {
                if (a)
                    os << ",";
                os << "\"" << jsonEscape(span.attrs[a].first) << "\":\""
                   << jsonEscape(span.attrs[a].second) << "\"";
            }
            os << "}";
        }
        os << "}";
    }
    os << "]}";
    return os.str();
}

std::string
exportTreeSummary()
{
    std::vector<SpanRecord> spans = snapshotSpans();
    // Completion order is children-before-parents; start order with
    // stable depth gives the natural top-down tree per thread.
    std::stable_sort(spans.begin(), spans.end(),
                     [](const SpanRecord &a, const SpanRecord &b) {
                         if (a.thread_id != b.thread_id)
                             return a.thread_id < b.thread_id;
                         if (a.start_ns != b.start_ns)
                             return a.start_ns < b.start_ns;
                         return a.depth < b.depth;
                     });
    std::ostringstream os;
    uint64_t current_tid = 0;
    for (const SpanRecord &span : spans) {
        if (span.thread_id != current_tid) {
            current_tid = span.thread_id;
            os << "thread " << current_tid << "\n";
        }
        for (int d = 0; d < span.depth; ++d)
            os << "  ";
        os << span.name << "  "
           << static_cast<double>(span.duration_ns) / 1e6 << " ms";
        for (const auto &[key, value] : span.attrs)
            os << "  " << key << "=" << value;
        os << "\n";
    }
    return os.str();
}

bool
writeChromeJson(const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << exportChromeJson() << "\n";
    return static_cast<bool>(out);
}

void
configureFromEnv()
{
    const env::Toggle knob = env::toggle("HYDRIDE_TRACE");
    if (!knob.set)
        return;
    if (!knob.enabled) {
        setEnabled(false);
        return;
    }
    setEnabled(true);
    // The pid-suffixed default keeps parallel test runs under
    // `run_all.sh --trace` from clobbering each other.
    const std::string path =
        knob.path.empty()
            ? env::defaultArtifactPath("hydride_trace", "json")
            : knob.path;
    const bool was_registered = !exitPath().empty();
    exitPath() = path;
    if (!was_registered)
        std::atexit(writeAtExit);
}

namespace {
/** Apply the environment before main() runs. */
struct EnvInit
{
    EnvInit() { configureFromEnv(); }
} env_init;
} // namespace

} // namespace trace
} // namespace hydride
