#include "driver/resilience.h"

#include "analysis/symbolic/ir_equiv.h"
#include "codegen/lowering.h"
#include "observability/journal/journal.h"
#include "observability/log.h"
#include "observability/metrics.h"
#include "observability/trace.h"
#include "support/error.h"
#include "support/faults.h"
#include "support/rng.h"
#include "support/timing.h"

namespace hydride {

const char *
rungName(Rung rung)
{
    switch (rung) {
    case Rung::Synthesized: return "synthesized";
    case Rung::Cached: return "cached";
    case Rung::MacroExpanded: return "macro_expanded";
    case Rung::Scalarized: return "scalarized";
    case Rung::Failed: return "failed";
    }
    return "unknown";
}

int
scalarizedCost(const HExprPtr &window)
{
    // Lane-by-lane interpretation of every node: far worse than any
    // compiled rung, so cost comparisons and Table-4-style totals
    // make degradation visible instead of hiding it.
    if (!window)
        return 0;
    return HExpr::sizeOf(window) * window->lanes * 4;
}

BitVector
evalResilient(const AutoLLVMDict &dict, const ResilientWindow &window,
              const std::vector<BitVector> &inputs)
{
    if (window.rung == Rung::Scalarized)
        return evalHalide(window.window, inputs);
    HYD_ASSERT(window.ok, "evalResilient on a failed window");
    return window.program.evaluate(dict, inputs);
}

int
ResilientCompilation::staticCost() const
{
    int total = 0;
    for (const auto &window : windows) {
        total += window.rung == Rung::Scalarized
                     ? scalarizedCost(window.window)
                     : window.program.cost();
    }
    return total;
}

namespace {

/**
 * Run one ladder stage inside a recovery scope. Anything the stage
 * throws — a failed HYD_ASSERT, an injected fault, a CompileError
 * from library code, a bad_alloc from an unbounded search — becomes
 * a structured diagnostic and a false return; the driver then walks
 * on to the next rung. `fatal` (process exit) is reserved for
 * CLI-level argument errors and never reached from these stages.
 */
template <typename Fn>
bool
barrier(const char *stage, ResilientWindow &out,
        std::vector<WindowDiagnostic> &diags, Fn &&fn)
{
    try {
        return fn();
    } catch (const faults::InjectedFault &fault) {
        diags.push_back({fault.site(),
                         std::string("injected fault: ") + fault.what()});
    } catch (const AssertionError &err) {
        diags.push_back({stage, std::string("assertion: ") + err.what()});
    } catch (const ParseError &err) {
        diags.push_back({stage, std::string("parse error: ") + err.what()});
    } catch (const CompileError &err) {
        diags.push_back({stage, err.what()});
    } catch (const std::exception &err) {
        diags.push_back({stage, err.what()});
    }
    out.recovered = true;
    if (journal::enabled()) {
        // Crash-box: dump the flight ring the moment a barrier trips,
        // so the decisions leading up to the failure survive even if
        // the process never reaches the journal's atexit flush.
        journal::flightDump(std::string(stage) + ": " +
                            diags.back().detail);
    }
    return false;
}

/**
 * Trust-but-verify for a retrieved store entry: symbolic equivalence
 * first (the strong tier), concrete sampling when the symbolic
 * verdict is unknown. Returns false — with a reason — when the entry
 * is refuted; the caller quarantines it. The `store.verify` chaos
 * seam forces a refutation to exercise the poisoning path.
 */
bool
verifyRetrieved(const AutoLLVMDict &dict, const HExprPtr &window,
                const AutoModule &module, const sym::EqBudget &budget,
                int concrete_vectors, std::string &why)
{
    if (faults::shouldFail("store.verify")) {
        why = "injected store.verify fault";
        return false;
    }
    const sym::EqResult eq =
        sym::checkModuleEquiv(dict, module, window, budget);
    if (eq.verdict == sym::Verdict::Proved)
        return true;
    if (eq.verdict == sym::Verdict::Refuted) {
        why = "symbolically refuted (" + eq.method + " tier)";
        return false;
    }
    // Unknown verdict: fall back to concrete sampling. Fixed seed so
    // a poisoned entry fails deterministically run to run.
    Rng rng(0x570F3u ^ HExpr::hashOf(window));
    for (int v = 0; v < concrete_vectors; ++v) {
        std::vector<BitVector> inputs;
        for (int w : module.input_widths)
            inputs.push_back(BitVector::random(std::max(w, 1), rng));
        if (module.evaluate(dict, inputs) != evalHalide(window, inputs)) {
            why = "concrete counterexample (vector " +
                  std::to_string(v) + ")";
            return false;
        }
    }
    return true;
}

} // namespace

ResilientCompiler::ResilientCompiler(const AutoLLVMDict &dict,
                                     std::string isa, int vector_bits,
                                     ResilienceOptions options,
                                     SynthesisCache *cache)
    : dict_(dict), isa_(std::move(isa)), vector_bits_(vector_bits),
      options_(std::move(options)), cache_(cache ? cache : &own_cache_),
      fallback_(dict, isa_, vector_bits)
{
    if (!options_.store_path.empty()) {
        // A store that cannot open is a degraded session, not a
        // failed one: warm starts are an optimization, never a
        // dependency.
        if (!store_.open(options_.store_path, dict_, options_.store)) {
            HYD_LOG(Warn, "synthesis store unavailable (" +
                              store_.openStats().error +
                              "); compiling cold");
            metrics::counter("resilience.store.open_failures").add();
        }
    }
}

void
ResilientCompiler::noteRecovery(ResilientWindow &out,
                                const std::string &site,
                                const std::string &detail)
{
    out.diagnostics.push_back({site, detail});
    metrics::counter("resilience.recovered." + site).add();
}

bool
ResilientCompiler::tryPrimary(const HExprPtr &window, ResilientWindow &out)
{
    std::vector<WindowDiagnostic> diags;
    const bool success = barrier("stage.primary", out, diags, [&] {
        // Whole-recovery-scope chaos seam: proves the barrier itself
        // catches a fault thrown between stages.
        faults::failPoint("compiler.window");

        if (const SynthesisResult *cached = cache_->lookup(window, isa_)) {
            if (!cached->ok) {
                // Negative entry: synthesis already failed for this
                // shape; skip straight to the fallback rungs.
                out.cache_outcome = "negative";
                metrics::counter("resilience.negative_cache.skips").add();
                out.diagnostics.push_back(
                    {"synthesis.cache",
                     "negative cache entry; skipping synthesis"});
                return false;
            }
            out.cache_outcome = "hit";
            LoweringResult lowered =
                lowerToTarget(cached->module, dict_, isa_);
            if (!lowered.ok) {
                out.diagnostics.push_back(
                    {"stage.lowering", "cached result no longer lowers: " +
                                           lowered.error});
                return false;
            }
            out.rung = Rung::Cached;
            out.from_cache = true;
            out.synth = *cached;
            out.program = std::move(lowered.program);
            return true;
        }

        out.cache_outcome = "miss";

        // The in-process cache missed; the durable store gets the
        // next word. An exact hit is re-proved before acceptance
        // (trust-but-verify) — a failing entry is demoted to the
        // quarantine and the ladder continues as if the store had
        // missed, so a poisoned record can never reach codegen.
        if (store_.isOpen()) {
            if (const SynthesisResult *stored =
                    store_.find(window, isa_)) {
                if (!stored->ok) {
                    out.cache_outcome = "store_negative";
                    metrics::counter("resilience.store.negative_skips")
                        .add();
                    cache_->insertByKey({HExpr::hashOf(window), isa_},
                                        *stored);
                    out.diagnostics.push_back(
                        {"synthesis.store",
                         "negative store entry; skipping synthesis"});
                    return false;
                }
                std::string why;
                const bool trusted =
                    !options_.store_verify ||
                    verifyRetrieved(dict_, window, stored->module,
                                    options_.synthesis.symbolic_budget,
                                    options_.store_verify_vectors, why);
                if (trusted) {
                    LoweringResult lowered =
                        lowerToTarget(stored->module, dict_, isa_);
                    if (lowered.ok) {
                        out.cache_outcome = "store_hit";
                        metrics::counter("resilience.store.hits").add();
                        out.rung = Rung::Cached;
                        out.from_cache = true;
                        out.synth = *stored;
                        cache_->insertByKey({HExpr::hashOf(window), isa_},
                                            *stored);
                        out.program = std::move(lowered.program);
                        return true;
                    }
                    out.diagnostics.push_back(
                        {"stage.lowering",
                         "stored result no longer lowers: " +
                             lowered.error});
                } else {
                    metrics::counter("resilience.store.poisoned").add();
                    out.diagnostics.push_back(
                        {"store.verify",
                         "store entry failed verification (" + why +
                             "); quarantined"});
                    store_.quarantine(window, isa_, why);
                }
                // Fall through to ordinary synthesis either way.
            }
        }

        SynthesisOptions synth_options = options_.synthesis;
        if (store_.isOpen() && options_.store_neighbor_distance >= 0) {
            // Approximate warm start: modules that solved windows a
            // few signature bits away. CEGIS verifies each against
            // *this* window's spec before using it, so a wrong
            // neighbor costs a few evaluations, never correctness.
            for (const auto &neighbor : store_.nearest(
                     window, isa_, options_.store_neighbor_distance,
                     static_cast<size_t>(std::max(
                         options_.store_neighbor_limit, 0)))) {
                synth_options.warm_seeds.push_back(
                    neighbor.result->module);
            }
            out.store_seeds =
                static_cast<int>(synth_options.warm_seeds.size());
            if (out.store_seeds > 0) {
                metrics::counter("resilience.store.seeded")
                    .add(static_cast<uint64_t>(out.store_seeds));
            }
        }
        SynthesisResult synth =
            synthesizeWindow(dict_, isa_, window, synth_options);
        // The note is "timeout" possibly extended by the unscaled
        // retry's outcome ("timeout; unscaled retry: ..."), so match
        // the prefix.
        if (!synth.ok && synth.note.rfind("timeout", 0) == 0 &&
            options_.retry_escalated) {
            // The search was cut off by its deadline rather than
            // exhausted — more budget can genuinely help. One retry,
            // escalated; search exhaustion is never retried (a bigger
            // budget re-walks the same finished grammar).
            SynthesisOptions escalated = options_.synthesis;
            escalated.timeout_seconds *= options_.timeout_escalation;
            escalated.symbolic_budget.max_nodes = static_cast<size_t>(
                escalated.symbolic_budget.max_nodes *
                options_.budget_escalation);
            escalated.symbolic_budget.max_conflicts = static_cast<long>(
                escalated.symbolic_budget.max_conflicts *
                options_.budget_escalation);
            out.retries = 1;
            metrics::counter("resilience.retries").add();
            SynthesisResult retried =
                synthesizeWindow(dict_, isa_, window, escalated);
            if (retried.ok)
                synth = std::move(retried);
        }
        cache_->insert(window, isa_, synth);
        if (store_.isOpen()) {
            // Share the outcome — positive or negative — with every
            // other process on this store. A failed append is only a
            // lost optimization (logged inside append()).
            store_.append(window, isa_, synth);
        }
        if (!synth.ok) {
            out.diagnostics.push_back(
                {"stage.synthesis", "synthesis failed: " + synth.note});
            // Keep the failed attempt's search effort: the window
            // ledger reports CEGIS iterations even for degraded rungs.
            out.synth = std::move(synth);
            return false;
        }
        LoweringResult lowered = lowerToTarget(synth.module, dict_, isa_);
        if (!lowered.ok) {
            out.diagnostics.push_back(
                {"stage.lowering",
                 "synthesized window does not lower: " + lowered.error});
            out.synth = std::move(synth);
            return false;
        }
        out.rung = Rung::Synthesized;
        out.synth = std::move(synth);
        out.program = std::move(lowered.program);
        return true;
    });
    for (auto &diag : diags)
        noteRecovery(out, diag.site, diag.detail);
    return success;
}

bool
ResilientCompiler::tryMacro(const HExprPtr &window, ResilientWindow &out)
{
    std::vector<WindowDiagnostic> diags;
    const bool success = barrier("stage.macro", out, diags, [&] {
        ExpandResult expanded = fallback_.expand(window);
        if (!expanded.ok) {
            out.diagnostics.push_back(
                {"stage.macro", "macro expansion failed: " + expanded.error});
            return false;
        }
        out.rung = Rung::MacroExpanded;
        out.program = std::move(expanded.program);
        return true;
    });
    for (auto &diag : diags)
        noteRecovery(out, diag.site, diag.detail);
    return success;
}

ResilientWindow
ResilientCompiler::compileWindow(const HExprPtr &window)
{
    ResilientWindow out;
    out.window = window;
    Stopwatch watch;
    CpuStopwatch cpu;
    trace::TraceSpan span("driver.resilience.window");
    span.setAttr("isa", isa_);
    metrics::counter("resilience.windows").add();

    out.ok = tryPrimary(window, out);
    if (!out.ok && options_.allow_macro_fallback)
        out.ok = tryMacro(window, out);
    if (!out.ok && options_.allow_scalarized) {
        // The rung of last resort cannot fail: the window *is* its
        // own specification, evaluated directly by evalHalide.
        out.rung = Rung::Scalarized;
        out.program = TargetProgram{};
        out.ok = true;
    }
    if (!out.ok) {
        out.rung = Rung::Failed;
        metrics::counter("resilience.failed_windows").add();
        HYD_LOG(Warn, "window failed every enabled rung on " + isa_ +
                          (out.diagnostics.empty()
                               ? std::string()
                               : ": " + out.diagnostics.back().detail));
    }
    if (out.rung != Rung::Synthesized && out.rung != Rung::Cached)
        metrics::counter("resilience.degradations").add();
    metrics::counter(std::string("resilience.rung.") + rungName(out.rung))
        .add();

    out.seconds = watch.seconds();
    span.setAttr("rung", rungName(out.rung));
    span.setAttr("retries", out.retries);
    span.setAttr("from_cache", out.from_cache);
    span.setAttr("recovered", out.recovered);
    span.setAttr("diagnostics",
                 static_cast<int64_t>(out.diagnostics.size()));

    if (journal::enabled()) {
        // The decision ledger: everything `hydride-inspect explain`
        // prints for this window comes from this one event.
        journal::WindowLedger ledger;
        ledger.window_hash = journal::hashHex(HExpr::hashOf(window));
        ledger.isa = isa_;
        ledger.lanes = window->lanes;
        ledger.elem_width = window->elem_width;
        ledger.nodes = HExpr::sizeOf(window);
        ledger.cache = out.cache_outcome;
        ledger.rung = rungName(out.rung);
        ledger.store_seeds = out.store_seeds;
        ledger.warm_started = out.synth.warm_started;
        ledger.cegis_iterations = out.synth.cegis_iterations;
        ledger.counterexamples = out.synth.counterexamples;
        ledger.candidates_rejected = out.synth.candidates_rejected;
        ledger.candidates_rejected_static =
            static_cast<int>(out.synth.candidates_rejected_static);
        ledger.symbolic_refutations = out.synth.symbolic_refutations;
        ledger.symbolic_unknowns = out.synth.symbolic_unknowns;
        ledger.symbolic_verdict = out.synth.symbolic_verdict;
        ledger.note = out.synth.note;
        ledger.retries = out.retries;
        ledger.recovered = out.recovered;
        ledger.cost = out.rung == Rung::Scalarized
                          ? scalarizedCost(window)
                          : out.program.cost();
        for (const auto &inst : out.program.insts)
            ledger.insts.push_back(inst.inst_name);
        for (const auto &diag : out.diagnostics)
            ledger.faults.emplace_back(diag.site, diag.detail);
        ledger.wall_ms = watch.millis();
        ledger.cpu_ms = cpu.millis();
        journal::emitWindow(ledger);
    }
    return out;
}

ResilientCompilation
ResilientCompiler::compile(const Kernel &kernel)
{
    ResilientCompilation out;
    out.kernel = kernel.name;
    out.isa = isa_;
    trace::TraceSpan span("driver.resilience.kernel");
    span.setAttr("kernel", kernel.name);
    span.setAttr("isa", isa_);
    Stopwatch watch;
    for (size_t w = 0; w < kernel.windows.size(); ++w) {
        const HExprPtr &window = kernel.windows[w];
        std::vector<HExprPtr> pieces =
            splitWindow(window, options_.synthesis.window_depth,
                        halideInputCount(window), vector_bits_);
        for (const auto &piece : pieces) {
            ResilientWindow compiled = compileWindow(piece);
            out.degraded_windows += (compiled.rung != Rung::Synthesized &&
                                     compiled.rung != Rung::Cached)
                                        ? 1
                                        : 0;
            out.failed_windows += compiled.ok ? 0 : 1;
            out.windows.push_back(std::move(compiled));
            out.pieces.push_back(piece);
            out.piece_group.push_back(static_cast<int>(w));
        }
    }
    out.compile_seconds = watch.seconds();
    span.setAttr("pieces", static_cast<int64_t>(out.pieces.size()));
    span.setAttr("degraded", out.degraded_windows);
    span.setAttr("failed", out.failed_windows);
    return out;
}

} // namespace hydride
