/**
 * @file
 * The resilient compilation driver: per-window error barriers with a
 * guaranteed degradation ladder.
 *
 * `HydrideCompiler` (synthesis/compiler.h) implements the paper's
 * happy path: cache -> synthesis -> lowering, with macro expansion as
 * the one fallback. This driver wraps the same components in a
 * *recovery scope* per window: any stage may throw (a failed
 * invariant, an injected fault from support/faults.h, an exhausted
 * budget) or simply report failure, and the driver walks down a fixed
 * ladder until something succeeds:
 *
 *   Synthesized  — CEGIS found a program and it lowered (best).
 *   Cached       — a previous synthesis result was reused.
 *   MacroExpanded— per-operation instruction selection (the baseline
 *                  compiler's output; correct, usually slower).
 *   Scalarized   — the window is kept as a Halide expression and
 *                  evaluated directly (evalHalide). Trivially
 *                  equivalent to the spec by construction, with a
 *                  punitive static cost; the rung of last resort.
 *   Failed       — only when scalarization is explicitly disabled;
 *                  carries structured diagnostics, never an abort.
 *
 * The invariant the chaos harness (tools/hydride_chaos.cpp) checks:
 * for every registered fault site, compilation through this driver
 * either produces a verified-equivalent (possibly degraded) program
 * or a structured diagnostic — never a crash, process exit, or
 * silently wrong code.
 *
 * Every degradation is observable: `resilience.*` metrics count
 * windows per rung, recoveries per fault site, and escalated
 * retries; the `driver.resilience.window` trace span records the
 * rung each window landed on.
 */
#ifndef HYDRIDE_DRIVER_RESILIENCE_H
#define HYDRIDE_DRIVER_RESILIENCE_H

#include <string>
#include <vector>

#include "synthesis/compiler.h"
#include "synthesis/store/store.h"

namespace hydride {

/** The degradation ladder, best rung first. */
enum class Rung {
    Synthesized,
    Cached,
    MacroExpanded,
    Scalarized,
    Failed,
};

/** Stable lower-case rung name ("synthesized", ...). */
const char *rungName(Rung rung);

/** Driver policy knobs. */
struct ResilienceOptions
{
    SynthesisOptions synthesis;
    /**
     * When synthesis fails specifically on its deadline (not search
     * exhaustion — escalation cannot help an exhausted grammar),
     * retry once with the budgets below multiplied in.
     */
    bool retry_escalated = true;
    double timeout_escalation = 4.0;
    double budget_escalation = 4.0;
    /** Disable rungs (the chaos harness's --break-ladder mode uses
     *  these to prove the harness detects a broken ladder). */
    bool allow_macro_fallback = true;
    bool allow_scalarized = true;
    /**
     * Durable synthesis store (synthesis/store/store.h). Empty path
     * disables it. When open: exact hits short-circuit synthesis
     * (after verification, below), near misses seed CEGIS warm
     * starts, and fresh synthesis results are appended for other
     * processes. A store that fails to open degrades to "no store" —
     * it never takes compilation down.
     */
    std::string store_path;
    SynthesisStore::Options store;
    /**
     * Trust-but-verify for retrieved *exact* store hits: re-prove the
     * module against the window (symbolic tier first, concrete
     * vectors when the symbolic verdict is unknown) before accepting.
     * A failing entry is quarantined (`store_poisoned` journal event)
     * and the driver falls through to ordinary synthesis — a poisoned
     * store entry can never reach codegen.
     */
    bool store_verify = true;
    /** Concrete vectors for the unknown-verdict fallback above. */
    int store_verify_vectors = 16;
    /** Neighbor warm-start: max signature Hamming distance (< 0
     *  disables retrieval) and how many seeds to pass to CEGIS. */
    int store_neighbor_distance = 8;
    int store_neighbor_limit = 4;
};

/** One recovered failure on the way down the ladder. */
struct WindowDiagnostic
{
    /** Fault site or stage name ("cegis.timeout", "stage.lowering"). */
    std::string site;
    std::string detail;
};

/** Outcome of resiliently compiling one window. */
struct ResilientWindow
{
    Rung rung = Rung::Failed;
    bool ok = false;
    bool from_cache = false;
    /** Memoization outcome: "hit", "miss", "negative", or "none"
     *  when a fault tripped before the lookup ran; "store_hit" /
     *  "store_negative" when the durable store answered after the
     *  in-process cache missed. */
    std::string cache_outcome = "none";
    /** Warm-start seeds retrieved from the store for this window. */
    int store_seeds = 0;
    /** Escalated synthesis retries performed (0 or 1). */
    int retries = 0;
    /** A caught error was degraded past (ok may still be true). */
    bool recovered = false;
    /** Target program; empty for the Scalarized and Failed rungs. */
    TargetProgram program;
    /** The window itself (evalResilient needs it for Scalarized). */
    HExprPtr window;
    SynthesisResult synth; ///< Valid when rung == Synthesized/Cached.
    double seconds = 0.0;
    std::vector<WindowDiagnostic> diagnostics;
};

/** Outcome of resiliently compiling a whole kernel. */
struct ResilientCompilation
{
    std::string kernel;
    std::string isa;
    std::vector<ResilientWindow> windows;
    /** Effective (split) pieces, one per entry of `windows`. */
    std::vector<HExprPtr> pieces;
    std::vector<int> piece_group;
    double compile_seconds = 0.0;
    /** Windows below the Synthesized/Cached rungs. */
    int degraded_windows = 0;
    int failed_windows = 0;

    bool allOk() const { return failed_windows == 0; }

    /** Static cost across windows (scalarized rungs use
     *  scalarizedCost, so degradation is visible in the total). */
    int staticCost() const;
};

/** Punitive static cost of interpreting a window lane by lane. */
int scalarizedCost(const HExprPtr &window);

/**
 * Evaluate a resiliently compiled window on concrete inputs,
 * dispatching on the rung (target-program semantics for compiled
 * rungs, direct Halide evaluation for Scalarized). The chaos
 * harness verifies every rung through this one entry point.
 */
BitVector evalResilient(const AutoLLVMDict &dict,
                        const ResilientWindow &window,
                        const std::vector<BitVector> &inputs);

/** Error-barrier compiler with the guaranteed degradation ladder. */
class ResilientCompiler
{
  public:
    ResilientCompiler(const AutoLLVMDict &dict, std::string isa,
                      int vector_bits, ResilienceOptions options = {},
                      SynthesisCache *cache = nullptr);

    /** Compile one window; never throws, never exits. */
    ResilientWindow compileWindow(const HExprPtr &window);

    /** Compile a whole kernel through per-window recovery scopes. */
    ResilientCompilation compile(const Kernel &kernel);

    const AutoLLVMDict &dict() const { return dict_; }

    /** The durable store, when ResilienceOptions::store_path opened
     *  one (isOpen() false otherwise). */
    SynthesisStore &store() { return store_; }

  private:
    /** Cache/synthesis/lowering — the Synthesized and Cached rungs. */
    bool tryPrimary(const HExprPtr &window, ResilientWindow &out);
    /** The MacroExpanded rung. */
    bool tryMacro(const HExprPtr &window, ResilientWindow &out);
    void noteRecovery(ResilientWindow &out, const std::string &site,
                      const std::string &detail);

    const AutoLLVMDict &dict_;
    std::string isa_;
    int vector_bits_;
    ResilienceOptions options_;
    SynthesisCache *cache_;
    SynthesisCache own_cache_;
    SynthesisStore store_;
    MacroExpander fallback_;
};

} // namespace hydride

#endif // HYDRIDE_DRIVER_RESILIENCE_H
