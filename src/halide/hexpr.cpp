#include "halide/hexpr.h"

#include "support/error.h"
#include "support/strings.h"

#include <functional>
#include <map>
#include <set>
#include <sstream>

namespace hydride {

namespace {

HExprPtr
make(HOp op, int ew, int lanes, int64_t imm, bool sign,
     std::vector<HExprPtr> kids)
{
    HYD_ASSERT(ew >= 1 && lanes >= 1, "degenerate Halide vector type");
    auto node = std::make_shared<HExpr>();
    node->op = op;
    node->elem_width = ew;
    node->lanes = lanes;
    node->imm = imm;
    node->sign = sign;
    node->kids = std::move(kids);
    return node;
}

} // namespace

bool
HExpr::equals(const HExprPtr &a, const HExprPtr &b)
{
    if (a.get() == b.get())
        return true;
    if (!a || !b)
        return false;
    if (a->op != b->op || a->elem_width != b->elem_width ||
        a->lanes != b->lanes || a->imm != b->imm || a->sign != b->sign ||
        a->kids.size() != b->kids.size()) {
        return false;
    }
    for (size_t k = 0; k < a->kids.size(); ++k)
        if (!equals(a->kids[k], b->kids[k]))
            return false;
    return true;
}

uint64_t
HExpr::hashOf(const HExprPtr &expr)
{
    if (!expr)
        return 0;
    uint64_t h = static_cast<uint64_t>(expr->op) * 0x9E3779B97F4A7C15ull;
    h ^= static_cast<uint64_t>(expr->elem_width) * 131;
    h ^= static_cast<uint64_t>(expr->lanes) * 65537;
    h ^= static_cast<uint64_t>(expr->imm) + (h << 6) + (h >> 2);
    h ^= expr->sign ? 0xF00Dull : 0;
    for (const auto &kid : expr->kids)
        h ^= hashOf(kid) + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    return h;
}

int
HExpr::sizeOf(const HExprPtr &expr)
{
    int n = 1;
    for (const auto &kid : expr->kids)
        n += sizeOf(kid);
    return n;
}

int
HExpr::depthOf(const HExprPtr &expr)
{
    int deepest = 0;
    for (const auto &kid : expr->kids)
        deepest = std::max(deepest, depthOf(kid));
    return deepest + 1;
}

HExprPtr
hInput(int index, int elem_width, int lanes)
{
    return make(HOp::Input, elem_width, lanes, index, true, {});
}

HExprPtr
hConst(int64_t value, int elem_width, int lanes)
{
    return make(HOp::ConstSplat, elem_width, lanes, value, true, {});
}

HExprPtr
hCast(HExprPtr a, int new_width, bool sign)
{
    const int lanes = a->lanes;
    return make(HOp::Cast, new_width, lanes, 0, sign, {std::move(a)});
}

HExprPtr
hBin(HOp op, HExprPtr a, HExprPtr b)
{
    HYD_ASSERT(a->elem_width == b->elem_width && a->lanes == b->lanes,
               "halide binary operand shape mismatch");
    const int ew = a->elem_width;
    const int lanes = a->lanes;
    return make(op, ew, lanes, 0, true, {std::move(a), std::move(b)});
}

HExprPtr
hShift(HOp op, HExprPtr a, int amount)
{
    const int ew = a->elem_width;
    const int lanes = a->lanes;
    return make(op, ew, lanes, amount, true, {std::move(a)});
}

HExprPtr
hSatNarrow(HExprPtr a, int new_width, bool sign)
{
    HYD_ASSERT(new_width <= a->elem_width, "saturating cast must narrow");
    const int lanes = a->lanes;
    return make(sign ? HOp::SatNarrowS : HOp::SatNarrowU, new_width, lanes,
                0, sign, {std::move(a)});
}

HExprPtr
hAbs(HExprPtr a)
{
    const int ew = a->elem_width;
    const int lanes = a->lanes;
    return make(HOp::AbsS, ew, lanes, 0, true, {std::move(a)});
}

HExprPtr
hReduceAdd(HExprPtr a, int stride)
{
    HYD_ASSERT(stride >= 2 && a->lanes % stride == 0,
               "reduce-add stride must divide the lane count");
    const int ew = a->elem_width;
    const int lanes = a->lanes / stride;
    return make(HOp::ReduceAdd, ew, lanes, stride, true, {std::move(a)});
}

HExprPtr
hConcat(HExprPtr a, HExprPtr b)
{
    HYD_ASSERT(a->elem_width == b->elem_width,
               "concat element width mismatch");
    const int ew = a->elem_width;
    const int lanes = a->lanes + b->lanes;
    return make(HOp::Concat, ew, lanes, 0, true, {std::move(a), std::move(b)});
}

HExprPtr
hSlice(HExprPtr a, int start_lane, int count)
{
    HYD_ASSERT(start_lane >= 0 && start_lane + count <= a->lanes,
               "slice out of range");
    const int ew = a->elem_width;
    return make(HOp::Slice, ew, count, start_lane, true, {std::move(a)});
}

BitVector
evalHalide(const HExprPtr &expr, const std::vector<BitVector> &inputs)
{
    const int ew = expr->elem_width;
    const int lanes = expr->lanes;
    auto eval_kid = [&](int k) { return evalHalide(expr->kids[k], inputs); };

    switch (expr->op) {
      case HOp::Input: {
        HYD_ASSERT(expr->imm < static_cast<int64_t>(inputs.size()),
                   "halide input index out of range");
        const BitVector &value = inputs[expr->imm];
        HYD_ASSERT(value.width() == expr->totalWidth(),
                   "halide input width mismatch");
        return value;
      }
      case HOp::ConstSplat: {
        BitVector out(expr->totalWidth());
        const BitVector elem = BitVector::fromInt(ew, expr->imm);
        for (int lane = 0; lane < lanes; ++lane)
            out.setSlice(lane * ew, elem);
        return out;
      }
      case HOp::Cast: {
        const BitVector a = eval_kid(0);
        const int from = expr->kids[0]->elem_width;
        BitVector out(expr->totalWidth());
        for (int lane = 0; lane < lanes; ++lane) {
            BitVector elem = a.extract(lane * from, from);
            if (ew > from)
                elem = expr->sign ? elem.sext(ew) : elem.zext(ew);
            else if (ew < from)
                elem = elem.trunc(ew);
            out.setSlice(lane * ew, elem);
        }
        return out;
      }
      case HOp::SatNarrowS:
      case HOp::SatNarrowU: {
        const BitVector a = eval_kid(0);
        const int from = expr->kids[0]->elem_width;
        BitVector out(expr->totalWidth());
        for (int lane = 0; lane < lanes; ++lane) {
            BitVector elem = a.extract(lane * from, from);
            elem = expr->op == HOp::SatNarrowS ? elem.satNarrowS(ew)
                                               : elem.satNarrowU(ew);
            out.setSlice(lane * ew, elem);
        }
        return out;
      }
      case HOp::ReduceAdd: {
        const BitVector a = eval_kid(0);
        const int stride = static_cast<int>(expr->imm);
        BitVector out(expr->totalWidth());
        for (int lane = 0; lane < lanes; ++lane) {
            BitVector sum(ew);
            for (int j = 0; j < stride; ++j)
                sum = sum.add(a.extract((lane * stride + j) * ew, ew));
            out.setSlice(lane * ew, sum);
        }
        return out;
      }
      case HOp::Concat: {
        return BitVector::concat(eval_kid(1), eval_kid(0));
      }
      case HOp::Slice: {
        const BitVector a = eval_kid(0);
        return a.extract(static_cast<int>(expr->imm) * ew, lanes * ew);
      }
      case HOp::ShlC:
      case HOp::AShrC:
      case HOp::LShrC: {
        const BitVector a = eval_kid(0);
        BitVector out(expr->totalWidth());
        const int amount = static_cast<int>(expr->imm);
        for (int lane = 0; lane < lanes; ++lane) {
            BitVector elem = a.extract(lane * ew, ew);
            elem = expr->op == HOp::ShlC    ? elem.shl(amount)
                   : expr->op == HOp::AShrC ? elem.ashr(amount)
                                            : elem.lshr(amount);
            out.setSlice(lane * ew, elem);
        }
        return out;
      }
      case HOp::AbsS: {
        const BitVector a = eval_kid(0);
        BitVector out(expr->totalWidth());
        for (int lane = 0; lane < lanes; ++lane)
            out.setSlice(lane * ew, a.extract(lane * ew, ew).absS());
        return out;
      }
      default: {
        // Lane-wise binary operators.
        const BitVector a = eval_kid(0);
        const BitVector b = eval_kid(1);
        BitVector out(expr->totalWidth());
        for (int lane = 0; lane < lanes; ++lane) {
            const BitVector x = a.extract(lane * ew, ew);
            const BitVector y = b.extract(lane * ew, ew);
            BitVector elem(ew);
            switch (expr->op) {
              case HOp::Add: elem = x.add(y); break;
              case HOp::Sub: elem = x.sub(y); break;
              case HOp::Mul: elem = x.mul(y); break;
              case HOp::MinS: elem = x.minS(y); break;
              case HOp::MaxS: elem = x.maxS(y); break;
              case HOp::MinU: elem = x.minU(y); break;
              case HOp::MaxU: elem = x.maxU(y); break;
              case HOp::SatAddS: elem = x.addSatS(y); break;
              case HOp::SatAddU: elem = x.addSatU(y); break;
              case HOp::SatSubS: elem = x.subSatS(y); break;
              case HOp::SatSubU: elem = x.subSatU(y); break;
              case HOp::AvgU: elem = x.avgU(y); break;
              case HOp::MulHiS:
                elem = x.sext(2 * ew).mul(y.sext(2 * ew)).extract(ew, ew);
                break;
              default:
                panic("unhandled Halide operator");
            }
            out.setSlice(lane * ew, elem);
        }
        return out;
      }
    }
}

int
halideInputCount(const HExprPtr &expr)
{
    std::set<int64_t> seen;
    std::vector<const HExpr *> stack = {expr.get()};
    while (!stack.empty()) {
        const HExpr *node = stack.back();
        stack.pop_back();
        if (node->op == HOp::Input)
            seen.insert(node->imm);
        for (const auto &kid : node->kids)
            stack.push_back(kid.get());
    }
    return static_cast<int>(seen.size());
}

const char *
hOpName(HOp op)
{
    switch (op) {
      case HOp::Input: return "input";
      case HOp::ConstSplat: return "const";
      case HOp::Cast: return "cast";
      case HOp::Add: return "add";
      case HOp::Sub: return "sub";
      case HOp::Mul: return "mul";
      case HOp::MinS: return "min";
      case HOp::MaxS: return "max";
      case HOp::MinU: return "minu";
      case HOp::MaxU: return "maxu";
      case HOp::ShlC: return "shl";
      case HOp::AShrC: return "ashr";
      case HOp::LShrC: return "lshr";
      case HOp::SatAddS: return "sat-add";
      case HOp::SatAddU: return "sat-addu";
      case HOp::SatSubS: return "sat-sub";
      case HOp::SatSubU: return "sat-subu";
      case HOp::SatNarrowS: return "sat-narrow";
      case HOp::SatNarrowU: return "sat-narrowu";
      case HOp::MulHiS: return "mulhi";
      case HOp::AvgU: return "avgu";
      case HOp::AbsS: return "abs";
      case HOp::ReduceAdd: return "reduce-add";
      case HOp::Concat: return "concat";
      case HOp::Slice: return "slice";
    }
    return "?";
}

namespace {

void
printInto(const HExprPtr &expr, std::ostringstream &os)
{
    os << "(" << hOpName(expr->op) << ":" << expr->lanes << "x"
       << "i" << expr->elem_width;
    if (expr->op == HOp::Input || expr->op == HOp::ConstSplat ||
        expr->op == HOp::ShlC || expr->op == HOp::AShrC ||
        expr->op == HOp::LShrC || expr->op == HOp::ReduceAdd ||
        expr->op == HOp::Slice) {
        os << " " << expr->imm;
    }
    for (const auto &kid : expr->kids) {
        os << " ";
        printInto(kid, os);
    }
    os << ")";
}

} // namespace

std::string
printHalide(const HExprPtr &expr)
{
    std::ostringstream os;
    printInto(expr, os);
    return os.str();
}

namespace {

HExprPtr
splitRec(const HExprPtr &expr, int max_depth, int max_width,
         int &next_input, std::vector<HExprPtr> &pieces)
{
    if (HExpr::depthOf(expr) <= max_depth)
        return expr;
    std::vector<HExprPtr> kids;
    bool changed = false;
    for (const auto &kid : expr->kids) {
        HExprPtr rebuilt =
            splitRec(kid, max_depth, max_width, next_input, pieces);
        changed |= rebuilt.get() != kid.get();
        kids.push_back(std::move(rebuilt));
    }
    HExprPtr node = expr;
    if (changed) {
        auto fresh = std::make_shared<HExpr>(*expr);
        fresh->kids = kids;
        node = fresh;
    }
    if (HExpr::depthOf(node) <= max_depth)
        return node;
    // Still too deep: cut non-leaf, register-sized children out as
    // their own pieces. A wider-than-register subtree cannot itself
    // be a cut point (it is not a materializable register value), so
    // the cut recurses through it to its register-sized descendants.
    std::function<HExprPtr(const HExprPtr &)> cut_kid =
        [&](const HExprPtr &kid) -> HExprPtr {
        if (HExpr::depthOf(kid) <= 1)
            return kid;
        if (max_width <= 0 || kid->totalWidth() <= max_width) {
            pieces.push_back(kid);
            return hInput(next_input++, kid->elem_width, kid->lanes);
        }
        std::vector<HExprPtr> grand;
        for (const auto &inner : kid->kids)
            grand.push_back(cut_kid(inner));
        auto clone = std::make_shared<HExpr>(*kid);
        clone->kids = std::move(grand);
        return clone;
    };
    std::vector<HExprPtr> cut_kids;
    for (const auto &kid : node->kids)
        cut_kids.push_back(cut_kid(kid));
    auto fresh = std::make_shared<HExpr>(*node);
    fresh->kids = std::move(cut_kids);
    return fresh;
}

} // namespace

namespace {

void
countRefs(const HExprPtr &expr,
          std::map<const HExpr *, int> &refs)
{
    if (++refs[expr.get()] > 1)
        return; // Children already counted on the first visit.
    for (const auto &kid : expr->kids)
        countRefs(kid, refs);
}

/**
 * Cut multiply-referenced subtrees out as pieces first, so common
 * subexpressions are computed once (the median-filter exchange
 * network is the motivating case). Each shared node maps to one cut
 * input used at every occurrence.
 */
HExprPtr
cutShared(const HExprPtr &expr, const std::map<const HExpr *, int> &refs,
          int max_width, int &next_input, std::vector<HExprPtr> &pieces,
          std::map<const HExpr *, HExprPtr> &replacement)
{
    auto assigned = replacement.find(expr.get());
    if (assigned != replacement.end())
        return assigned->second;

    std::vector<HExprPtr> kids;
    bool changed = false;
    for (const auto &kid : expr->kids) {
        HExprPtr rebuilt = cutShared(kid, refs, max_width, next_input,
                                     pieces, replacement);
        changed |= rebuilt.get() != kid.get();
        kids.push_back(std::move(rebuilt));
    }
    HExprPtr node = expr;
    if (changed) {
        auto fresh = std::make_shared<HExpr>(*expr);
        fresh->kids = std::move(kids);
        node = fresh;
    }

    const bool shared = refs.at(expr.get()) > 1;
    const bool cuttable = HExpr::depthOf(expr) > 1 &&
                          (max_width <= 0 ||
                           expr->totalWidth() <= max_width);
    if (shared && cuttable) {
        pieces.push_back(node);
        HExprPtr input =
            hInput(next_input++, expr->elem_width, expr->lanes);
        replacement[expr.get()] = input;
        return input;
    }
    if (shared)
        replacement[expr.get()] = node;
    return node;
}

} // namespace

std::vector<HExprPtr>
splitWindow(const HExprPtr &window, int max_depth, int next_input,
            int max_width)
{
    std::vector<HExprPtr> pieces;
    std::map<const HExpr *, int> refs;
    countRefs(window, refs);
    std::map<const HExpr *, HExprPtr> replacement;
    HExprPtr deduped = cutShared(window, refs, max_width, next_input,
                                 pieces, replacement);
    HExprPtr root =
        splitRec(deduped, max_depth, max_width, next_input, pieces);
    pieces.push_back(std::move(root));
    return pieces;
}

} // namespace hydride
