/**
 * @file
 * The 33 benchmark kernels of the paper's evaluation (§6, Table 4),
 * expressed as scheduled Halide-IR vector expressions.
 *
 * Each kernel is a set of expression *windows*: the vectorized inner-
 * loop bodies that remain after scheduling, exactly what Hydride's
 * synthesizer consumes. A schedule controls the vectorization factor
 * (which reshapes the windows) and tiling/unrolling (which changes
 * how many window instances the compiler must translate and how many
 * iterations execute, but — as the paper's Table 4 column IV relies
 * on — not the window shapes themselves).
 */
#ifndef HYDRIDE_HALIDE_KERNELS_H
#define HYDRIDE_HALIDE_KERNELS_H

#include <string>
#include <vector>

#include "halide/hexpr.h"

namespace hydride {

/** Scheduling knobs relevant to code generation. */
struct Schedule
{
    /** Vector register width the kernel was vectorized for. */
    int vector_bits = 256;
    /** Inner-loop unroll factor (duplicates window instances). */
    int unroll = 1;
    /** Tile edge; affects the dynamic iteration count only. */
    int tile = 8;
};

/** A scheduled kernel: expression windows plus dynamic work. */
struct Kernel
{
    std::string name;
    Schedule schedule;
    /** Vectorized inner-loop expression windows, in program order.
     *  Unrolled copies appear as repeated (shared) pointers. */
    std::vector<HExprPtr> windows;
    /** Dynamic executions of the whole window list per kernel run. */
    double iterations = 1.0;
};

/** The 33 benchmark names, in the paper's Table 4 order. */
const std::vector<std::string> &kernelNames();

/** Build a kernel by name; fatal on unknown names. */
Kernel buildKernel(const std::string &name, const Schedule &schedule);

} // namespace hydride

#endif // HYDRIDE_HALIDE_KERNELS_H
