/**
 * @file
 * The Halide-IR-level vector expression language (paper §4).
 *
 * Hydride's front end consumes Halide IR *after* all scheduling
 * optimizations — vectorization, tiling, unrolling — have been
 * applied, i.e. fixed-width integer vector expressions over loaded
 * inputs. This module defines exactly that language: a typed,
 * integer-only vector expression DAG with the operations the paper's
 * benchmark kernels exercise (casts, saturating arithmetic, min/max,
 * shifts, strided reduction `reduce-add`, lane concatenation/slicing,
 * averages, multiply-high), plus an interpreter over BitVector
 * values. Memory access is *not* modeled, matching the paper
 * ("Neither Rake nor Hydride support synthesis of memory
 * instructions") — loads appear as vector inputs.
 */
#ifndef HYDRIDE_HALIDE_HEXPR_H
#define HYDRIDE_HALIDE_HEXPR_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hir/bitvector.h"

namespace hydride {

/** Halide vector expression operators. */
enum class HOp {
    Input,      ///< Loaded vector operand; `imm` = input index.
    ConstSplat, ///< All lanes equal `imm`.
    Cast,       ///< Element width change; `sign` picks sext/zext.
    Add, Sub, Mul,
    MinS, MaxS, MinU, MaxU,
    ShlC, AShrC, LShrC, ///< Shift every lane by the constant `imm`.
    SatAddS, SatAddU, SatSubS, SatSubU,
    SatNarrowS, SatNarrowU, ///< Saturating casts to a narrower type.
    MulHiS,     ///< High half of the widened signed product.
    AvgU,       ///< Unsigned rounding average.
    AbsS,
    ReduceAdd,  ///< Sum groups of `imm` adjacent lanes.
    Concat,     ///< Lane concatenation (operand 0 in the low lanes).
    Slice,      ///< `imm` = first lane; lanes field = count.
};

struct HExpr;
using HExprPtr = std::shared_ptr<const HExpr>;

/** One Halide vector expression node (immutable). */
struct HExpr
{
    HOp op;
    int elem_width;  ///< Bits per lane of *this* value.
    int lanes;       ///< Lane count of this value.
    int64_t imm = 0; ///< Input index / constant / shift / stride / start.
    bool sign = true;
    std::vector<HExprPtr> kids;

    int totalWidth() const { return elem_width * lanes; }

    /** Structural equality. */
    static bool equals(const HExprPtr &a, const HExprPtr &b);

    /** Structural hash (the memoization-cache key builds on this). */
    static uint64_t hashOf(const HExprPtr &expr);

    /** Node count. */
    static int sizeOf(const HExprPtr &expr);

    /** Tree depth (leaves have depth 1). */
    static int depthOf(const HExprPtr &expr);
};

// ---- Factories --------------------------------------------------------------

HExprPtr hInput(int index, int elem_width, int lanes);
HExprPtr hConst(int64_t value, int elem_width, int lanes);
HExprPtr hCast(HExprPtr a, int new_width, bool sign);
HExprPtr hBin(HOp op, HExprPtr a, HExprPtr b);
HExprPtr hShift(HOp op, HExprPtr a, int amount);
HExprPtr hSatNarrow(HExprPtr a, int new_width, bool sign);
HExprPtr hAbs(HExprPtr a);
HExprPtr hReduceAdd(HExprPtr a, int stride);
HExprPtr hConcat(HExprPtr a, HExprPtr b);
HExprPtr hSlice(HExprPtr a, int start_lane, int count);

/** Evaluate on concrete inputs (lane 0 in the low-order bits). */
BitVector evalHalide(const HExprPtr &expr,
                     const std::vector<BitVector> &inputs);

/** Number of distinct Input indices referenced. */
int halideInputCount(const HExprPtr &expr);

/** Readable rendering for logs and examples. */
std::string printHalide(const HExprPtr &expr);

/**
 * Split a window into sub-windows of bounded depth (paper §4.2:
 * "Hydride extracts sub-expressions (which we call windows) of
 * bounded depth"). Subtrees cut out of the expression become new
 * Inputs numbered from `next_input`; pieces are returned in
 * evaluation order with the original root last, so piece k's extra
 * inputs refer to the outputs of earlier pieces. Only subtrees no
 * wider than `max_width` bits are cut (a cut point must fit in one
 * machine register); pass 0 for no width restriction.
 */
std::vector<HExprPtr> splitWindow(const HExprPtr &window, int max_depth,
                                  int next_input, int max_width = 0);

/** Operator mnemonic. */
const char *hOpName(HOp op);

} // namespace hydride

#endif // HYDRIDE_HALIDE_HEXPR_H
