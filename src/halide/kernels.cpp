#include "halide/kernels.h"

#include "support/error.h"

#include <functional>
#include <map>

namespace hydride {

namespace {

/**
 * Helper that hands out consecutively numbered inputs of the kernel's
 * vector shape and provides the recurring expression idioms.
 */
struct Ctx
{
    int vb;
    int next_input = 0;

    /** Fresh full-register input with `ew`-bit lanes. */
    HExprPtr
    in(int ew)
    {
        return hInput(next_input++, ew, vb / ew);
    }

    /** Fresh input with an explicit lane count. */
    HExprPtr
    inLanes(int ew, int lanes)
    {
        return hInput(next_input++, ew, lanes);
    }

    /** Widen unsigned 8-bit pixels to i16. */
    HExprPtr
    u8to16(HExprPtr pixels)
    {
        return hCast(std::move(pixels), 16, /*sign=*/false);
    }

    /** Balanced reduction of `values` under `op`. */
    HExprPtr
    tree(HOp op, std::vector<HExprPtr> values)
    {
        HYD_ASSERT(!values.empty(), "empty reduction");
        while (values.size() > 1) {
            std::vector<HExprPtr> next;
            for (size_t v = 0; v + 1 < values.size(); v += 2)
                next.push_back(hBin(op, values[v], values[v + 1]));
            if (values.size() % 2)
                next.push_back(values.back());
            values = std::move(next);
        }
        return values[0];
    }

    /** The matmul dot-product window of the paper's Table 3:
     *  acc + reduce-add(sext32(a) * sext32(b), 2). */
    HExprPtr
    dot2Acc()
    {
        HExprPtr acc = inLanes(32, vb / 32);
        HExprPtr a = in(16);
        HExprPtr b = in(16);
        HExprPtr prod = hBin(HOp::Mul, hCast(a, 32, true),
                             hCast(b, 32, true));
        return hBin(HOp::Add, acc, hReduceAdd(prod, 2));
    }

    /** Fixed-point 2nd-order polynomial in x (i16), used by the
     *  softmax/gelu approximations: ((x*k2 >> s) + k1)*x >> s + k0. */
    HExprPtr
    poly2(HExprPtr x, int64_t k0, int64_t k1, int64_t k2)
    {
        const int ew = x->elem_width;
        const int lanes = x->lanes;
        HExprPtr t = hBin(HOp::MulHiS, x, hConst(k2, ew, lanes));
        t = hBin(HOp::Add, t, hConst(k1, ew, lanes));
        t = hBin(HOp::MulHiS, t, x);
        return hBin(HOp::Add, t, hConst(k0, ew, lanes));
    }
};

using BuildFn = std::function<void(Ctx &, Kernel &)>;

/** Separable stencil helper: one row-combine window, one column
 *  window. Taps are weighted by shifts (w = 1, 2, 4, ...). */
void
stencilWindows(Ctx &ctx, Kernel &kernel, int taps,
               const std::vector<int> &log_weights, int post_shift)
{
    // Row window: widen u8 taps and accumulate the weighted sum. The
    // result spans two registers (widening doubles the footprint).
    {
        Ctx local = ctx;
        local.next_input = 0;
        std::vector<HExprPtr> weighted;
        for (int t = 0; t < taps; ++t) {
            HExprPtr tap = local.u8to16(local.in(8));
            if (log_weights[t] > 0)
                tap = hShift(HOp::ShlC, tap, log_weights[t]);
            weighted.push_back(std::move(tap));
        }
        kernel.windows.push_back(local.tree(HOp::Add, std::move(weighted)));
    }
    // Column window: combine the i16 column sums of two adjacent
    // output register halves, scale down and narrow back to u8 at the
    // natural (full-register) output width.
    {
        Ctx local = ctx;
        local.next_input = 0;
        auto half_sum = [&]() {
            std::vector<HExprPtr> col;
            for (int t = 0; t < taps; ++t) {
                HExprPtr tap = local.in(16);
                if (log_weights[t] > 0)
                    tap = hShift(HOp::ShlC, tap, log_weights[t]);
                col.push_back(std::move(tap));
            }
            return local.tree(HOp::Add, std::move(col));
        };
        HExprPtr sum = hConcat(half_sum(), half_sum());
        sum = hShift(HOp::LShrC, sum, post_shift);
        kernel.windows.push_back(hSatNarrow(sum, 8, /*sign=*/false));
    }
}

/** Box blur: rows summed, then normalized by a fixed-point
 *  reciprocal multiply. */
void
boxBlurWindows(Ctx &ctx, Kernel &kernel, int taps)
{
    Ctx rows = ctx;
    rows.next_input = 0;
    std::vector<HExprPtr> row_taps;
    for (int t = 0; t < taps; ++t)
        row_taps.push_back(rows.u8to16(rows.in(8)));
    kernel.windows.push_back(rows.tree(HOp::Add, std::move(row_taps)));

    Ctx cols = ctx;
    cols.next_input = 0;
    auto half_sum = [&]() {
        std::vector<HExprPtr> col_taps;
        for (int t = 0; t < taps; ++t)
            col_taps.push_back(cols.in(16));
        return cols.tree(HOp::Add, std::move(col_taps));
    };
    HExprPtr sum = hConcat(half_sum(), half_sum());
    // Multiply by reciprocal of taps^2 in Q15 and narrow.
    const int64_t recip = (1 << 15) / (taps * taps);
    HExprPtr scaled = hBin(HOp::MulHiS, sum, hConst(recip, 16, sum->lanes));
    kernel.windows.push_back(hSatNarrow(scaled, 8, /*sign=*/false));
}

/** Morphology: separable min/max stencils on u8 pixels. */
void
morphWindows(Ctx &ctx, Kernel &kernel, int taps, HOp op)
{
    for (int dim = 0; dim < 2; ++dim) {
        Ctx local = ctx;
        local.next_input = 0;
        std::vector<HExprPtr> values;
        for (int t = 0; t < taps; ++t)
            values.push_back(local.in(8));
        kernel.windows.push_back(local.tree(op, std::move(values)));
    }
}

/** Sobel gradient: |gx| + |gy| with saturating narrowing. */
void
sobelWindows(Ctx &ctx, Kernel &kernel, int radius)
{
    // One gradient window per direction plus the combine window.
    for (int dim = 0; dim < 2; ++dim) {
        Ctx local = ctx;
        local.next_input = 0;
        std::vector<HExprPtr> plus;
        std::vector<HExprPtr> minus;
        for (int t = 0; t < radius + 1; ++t) {
            HExprPtr a = local.u8to16(local.in(8));
            if (t == radius / 2)
                a = hShift(HOp::ShlC, a, 1);
            plus.push_back(std::move(a));
        }
        for (int t = 0; t < radius + 1; ++t) {
            HExprPtr b = local.u8to16(local.in(8));
            if (t == radius / 2)
                b = hShift(HOp::ShlC, b, 1);
            minus.push_back(std::move(b));
        }
        HExprPtr grad = hBin(HOp::Sub, local.tree(HOp::Add, plus),
                             local.tree(HOp::Add, minus));
        kernel.windows.push_back(hAbs(std::move(grad)));
    }
    Ctx combine = ctx;
    combine.next_input = 0;
    HExprPtr gx = hConcat(combine.in(16), combine.in(16));
    HExprPtr gy = hConcat(combine.in(16), combine.in(16));
    kernel.windows.push_back(
        hSatNarrow(hBin(HOp::SatAddS, gx, gy), 8, /*sign=*/false));
}

/** The median-of-9 min/max exchange network used by Halide. */
void
medianWindows(Ctx &ctx, Kernel &kernel)
{
    Ctx local = ctx;
    std::vector<HExprPtr> px;
    for (int t = 0; t < 9; ++t)
        px.push_back(local.in(8));
    auto exchange = [&](int i, int j) {
        HExprPtr lo = hBin(HOp::MinU, px[i], px[j]);
        HExprPtr hi = hBin(HOp::MaxU, px[i], px[j]);
        px[i] = lo;
        px[j] = hi;
    };
    // Paeth's 19-exchange median-of-9 network.
    exchange(1, 2); exchange(4, 5); exchange(7, 8);
    exchange(0, 1); exchange(3, 4); exchange(6, 7);
    exchange(1, 2); exchange(4, 5); exchange(7, 8);
    exchange(0, 3); exchange(5, 8); exchange(4, 7);
    exchange(3, 6); exchange(1, 4); exchange(2, 5);
    exchange(4, 7); exchange(4, 2); exchange(6, 4);
    exchange(4, 2);
    kernel.windows.push_back(px[4]);
}

/** Table of all 33 kernels. */
const std::map<std::string, BuildFn> &
builders()
{
    static const std::map<std::string, BuildFn> table = {
        {"sobel3x3",
         [](Ctx &c, Kernel &k) {
             sobelWindows(c, k, 2);
             k.iterations = 4e6 / (c.vb / 8);
         }},
        {"sobel5x5",
         [](Ctx &c, Kernel &k) {
             sobelWindows(c, k, 4);
             k.iterations = 4e6 / (c.vb / 8);
         }},
        {"dilate3x3",
         [](Ctx &c, Kernel &k) {
             morphWindows(c, k, 3, HOp::MaxU);
             k.iterations = 4e6 / (c.vb / 8);
         }},
        {"dilate5x5",
         [](Ctx &c, Kernel &k) {
             morphWindows(c, k, 5, HOp::MaxU);
             k.iterations = 4e6 / (c.vb / 8);
         }},
        {"dilate7x7",
         [](Ctx &c, Kernel &k) {
             morphWindows(c, k, 7, HOp::MaxU);
             k.iterations = 4e6 / (c.vb / 8);
         }},
        {"boxblur3x3",
         [](Ctx &c, Kernel &k) {
             boxBlurWindows(c, k, 3);
             k.iterations = 4e6 / (c.vb / 8);
         }},
        {"boxblur5x5",
         [](Ctx &c, Kernel &k) {
             boxBlurWindows(c, k, 5);
             k.iterations = 4e6 / (c.vb / 8);
         }},
        {"blur7x7",
         [](Ctx &c, Kernel &k) {
             boxBlurWindows(c, k, 7);
             k.iterations = 4e6 / (c.vb / 8);
         }},
        {"median3x3",
         [](Ctx &c, Kernel &k) {
             medianWindows(c, k);
             k.iterations = 4e6 / (c.vb / 8);
         }},
        {"gaussian3x3",
         [](Ctx &c, Kernel &k) {
             stencilWindows(c, k, 3, {0, 1, 0}, 4);
             k.iterations = 4e6 / (c.vb / 8);
         }},
        {"gaussian5x5",
         [](Ctx &c, Kernel &k) {
             stencilWindows(c, k, 5, {0, 2, 2, 2, 0}, 6);
             k.iterations = 4e6 / (c.vb / 8);
         }},
        {"gaussian7x7",
         [](Ctx &c, Kernel &k) {
             stencilWindows(c, k, 7, {0, 1, 3, 4, 3, 1, 0}, 8);
             k.iterations = 4e6 / (c.vb / 8);
         }},
        {"l2norm",
         [](Ctx &c, Kernel &k) {
             HExprPtr x = c.in(16);
             HExprPtr acc = c.inLanes(32, c.vb / 32);
             HExprPtr sq = hBin(HOp::Mul, hCast(x, 32, true),
                                hCast(x, 32, true));
             k.windows.push_back(hBin(HOp::Add, acc, hReduceAdd(sq, 2)));
             k.iterations = 2e6 / (c.vb / 16);
         }},
        {"conv_nn",
         [](Ctx &c, Kernel &k) {
             // Table 3 row 3: cast, mul, reduce-add 2, accumulate.
             HExprPtr a = c.in(16);
             HExprPtr b = c.in(16);
             HExprPtr acc = c.inLanes(32, c.vb / 32);
             HExprPtr prod = hBin(HOp::Mul, hCast(a, 32, true),
                                  hCast(b, 32, true));
             k.windows.push_back(hBin(HOp::Add, hReduceAdd(prod, 2), acc));
             k.iterations = 1.6e7 / (c.vb / 16);
         }},
        {"conv3x3a16",
         [](Ctx &c, Kernel &k) {
             for (int row = 0; row < 3; ++row) {
                 Ctx local = c;
                 local.next_input = 0;
                 k.windows.push_back(local.dot2Acc());
             }
             k.iterations = 8e6 / (c.vb / 16);
         }},
        {"depthwise_conv",
         [](Ctx &c, Kernel &k) {
             Ctx local = c;
             k.windows.push_back(local.dot2Acc());
             Ctx local2 = c;
             local2.next_input = 0;
             k.windows.push_back(local2.dot2Acc());
             k.iterations = 8e6 / (c.vb / 16);
         }},
        {"average_pool",
         [](Ctx &c, Kernel &k) {
             HExprPtr a = c.in(8);
             HExprPtr b = c.in(8);
             HExprPtr d = c.in(8);
             HExprPtr e = c.in(8);
             k.windows.push_back(hBin(HOp::AvgU, hBin(HOp::AvgU, a, b),
                                      hBin(HOp::AvgU, d, e)));
             k.iterations = 2e6 / (c.vb / 8);
         }},
        {"max_pool",
         [](Ctx &c, Kernel &k) {
             HExprPtr a = c.in(8);
             HExprPtr b = c.in(8);
             HExprPtr d = c.in(8);
             HExprPtr e = c.in(8);
             k.windows.push_back(hBin(HOp::MaxU, hBin(HOp::MaxU, a, b),
                                      hBin(HOp::MaxU, d, e)));
             k.iterations = 2e6 / (c.vb / 8);
         }},
        {"fully_connected",
         [](Ctx &c, Kernel &k) {
             Ctx local = c;
             k.windows.push_back(local.dot2Acc());
             Ctx bias = c;
             bias.next_input = 0;
             HExprPtr acc = bias.inLanes(32, c.vb / 32);
             HExprPtr b = bias.inLanes(32, c.vb / 32);
             k.windows.push_back(hBin(HOp::Add, acc, b));
             k.iterations = 8e6 / (c.vb / 16);
         }},
        {"add",
         [](Ctx &c, Kernel &k) {
             HExprPtr a = c.in(8);
             HExprPtr b = c.in(8);
             k.windows.push_back(hBin(HOp::SatAddU, a, b));
             k.iterations = 2e6 / (c.vb / 8);
         }},
        {"mul",
         [](Ctx &c, Kernel &k) {
             // Fixed-point i16 multiply: high half of the product.
             HExprPtr a = c.in(16);
             HExprPtr b = c.in(16);
             k.windows.push_back(hShift(HOp::ShlC,
                                        hBin(HOp::MulHiS, a, b), 1));
             k.iterations = 2e6 / (c.vb / 16);
         }},
        {"softmax",
         [](Ctx &c, Kernel &k) {
             // Window 1: subtract the running maximum.
             Ctx w1 = c;
             HExprPtr x = w1.in(16);
             HExprPtr m = w1.in(16);
             k.windows.push_back(hBin(HOp::Sub, x, hBin(HOp::MaxS, x, m)));
             // Window 2: fixed-point exp approximation.
             Ctx w2 = c;
             w2.next_input = 0;
             k.windows.push_back(w2.poly2(w2.in(16), 16384, 16384, 8192));
             // Window 3: normalize by the reciprocal of the sum.
             Ctx w3 = c;
             w3.next_input = 0;
             HExprPtr e = w3.in(16);
             HExprPtr recip = w3.in(16);
             k.windows.push_back(hBin(HOp::MulHiS, e, recip));
             k.iterations = 2e6 / (c.vb / 16);
         }},
        {"matmul_b1",
         [](Ctx &c, Kernel &k) {
             k.windows.push_back(c.dot2Acc());
             k.iterations = 1.6e7 / (c.vb / 16);
         }},
        {"matmul_b2",
         [](Ctx &c, Kernel &k) {
             for (int b = 0; b < 2; ++b) {
                 Ctx local = c;
                 local.next_input = 0;
                 k.windows.push_back(local.dot2Acc());
             }
             k.iterations = 1.6e7 / (c.vb / 16);
         }},
        {"matmul_b4",
         [](Ctx &c, Kernel &k) {
             for (int b = 0; b < 4; ++b) {
                 Ctx local = c;
                 local.next_input = 0;
                 k.windows.push_back(local.dot2Acc());
             }
             k.iterations = 1.6e7 / (c.vb / 16);
         }},
        {"average_pool_add",
         [](Ctx &c, Kernel &k) {
             Ctx w1 = c;
             HExprPtr a = w1.in(8);
             HExprPtr b = w1.in(8);
             HExprPtr d = w1.in(8);
             HExprPtr e = w1.in(8);
             k.windows.push_back(hBin(HOp::AvgU, hBin(HOp::AvgU, a, b),
                                      hBin(HOp::AvgU, d, e)));
             Ctx w2 = c;
             w2.next_input = 0;
             k.windows.push_back(
                 hBin(HOp::SatAddU, w2.in(8), w2.in(8)));
             k.iterations = 2e6 / (c.vb / 8);
         }},
        {"max_pool_add",
         [](Ctx &c, Kernel &k) {
             Ctx w1 = c;
             HExprPtr a = w1.in(8);
             HExprPtr b = w1.in(8);
             k.windows.push_back(hBin(HOp::MaxU, a, b));
             Ctx w2 = c;
             w2.next_input = 0;
             k.windows.push_back(
                 hBin(HOp::SatAddU, w2.in(8), w2.in(8)));
             k.iterations = 2e6 / (c.vb / 8);
         }},
        {"matmul_bias",
         [](Ctx &c, Kernel &k) {
             Ctx w1 = c;
             k.windows.push_back(w1.dot2Acc());
             Ctx w2 = c;
             w2.next_input = 0;
             k.windows.push_back(hBin(HOp::Add, w2.inLanes(32, c.vb / 32),
                                      w2.inLanes(32, c.vb / 32)));
             k.iterations = 1.6e7 / (c.vb / 16);
         }},
        {"matmul_bias_relu",
         [](Ctx &c, Kernel &k) {
             Ctx w1 = c;
             k.windows.push_back(w1.dot2Acc());
             Ctx w2 = c;
             w2.next_input = 0;
             HExprPtr biased = hBin(HOp::Add, w2.inLanes(32, c.vb / 32),
                                    w2.inLanes(32, c.vb / 32));
             k.windows.push_back(
                 hBin(HOp::MaxS, biased, hConst(0, 32, c.vb / 32)));
             k.iterations = 1.6e7 / (c.vb / 16);
         }},
        {"matmul_bias_gelu",
         [](Ctx &c, Kernel &k) {
             Ctx w1 = c;
             k.windows.push_back(w1.dot2Acc());
             Ctx w2 = c;
             w2.next_input = 0;
             HExprPtr lo = hBin(HOp::Add, w2.inLanes(32, c.vb / 32),
                                w2.inLanes(32, c.vb / 32));
             HExprPtr hi = hBin(HOp::Add, w2.inLanes(32, c.vb / 32),
                                w2.inLanes(32, c.vb / 32));
             k.windows.push_back(
                 hSatNarrow(hConcat(lo, hi), 16, true));
             Ctx w3 = c;
             w3.next_input = 0;
             HExprPtr x = w3.in(16);
             HExprPtr gate = w3.poly2(x, 16384, 12000, -4000);
             k.windows.push_back(hBin(HOp::MulHiS, x, gate));
             k.iterations = 1.6e7 / (c.vb / 16);
         }},
        {"matmul_bias_add",
         [](Ctx &c, Kernel &k) {
             Ctx w1 = c;
             k.windows.push_back(w1.dot2Acc());
             Ctx w2 = c;
             w2.next_input = 0;
             HExprPtr biased = hBin(HOp::Add, w2.inLanes(32, c.vb / 32),
                                    w2.inLanes(32, c.vb / 32));
             k.windows.push_back(
                 hBin(HOp::Add, biased, w2.inLanes(32, c.vb / 32)));
             k.iterations = 1.6e7 / (c.vb / 16);
         }},
        {"matmul_bias_relu_matmul",
         [](Ctx &c, Kernel &k) {
             for (int stage = 0; stage < 2; ++stage) {
                 Ctx w = c;
                 w.next_input = 0;
                 k.windows.push_back(w.dot2Acc());
             }
             Ctx w2 = c;
             w2.next_input = 0;
             HExprPtr biased = hBin(HOp::Add, w2.inLanes(32, c.vb / 32),
                                    w2.inLanes(32, c.vb / 32));
             k.windows.push_back(
                 hBin(HOp::MaxS, biased, hConst(0, 32, c.vb / 32)));
             k.iterations = 3.2e7 / (c.vb / 16);
         }},
        {"matmul_bias_gelu_matmul",
         [](Ctx &c, Kernel &k) {
             for (int stage = 0; stage < 2; ++stage) {
                 Ctx w = c;
                 w.next_input = 0;
                 k.windows.push_back(w.dot2Acc());
             }
             Ctx w3 = c;
             w3.next_input = 0;
             HExprPtr x = w3.in(16);
             HExprPtr gate = w3.poly2(x, 16384, 12000, -4000);
             k.windows.push_back(hBin(HOp::MulHiS, x, gate));
             k.iterations = 3.2e7 / (c.vb / 16);
         }},
    };
    return table;
}

} // namespace

const std::vector<std::string> &
kernelNames()
{
    static const std::vector<std::string> names = {
        "sobel3x3", "sobel5x5", "dilate3x3", "dilate5x5", "dilate7x7",
        "boxblur3x3", "boxblur5x5", "blur7x7", "median3x3", "gaussian3x3",
        "gaussian5x5", "gaussian7x7", "l2norm", "conv_nn", "conv3x3a16",
        "depthwise_conv", "average_pool", "max_pool", "fully_connected",
        "add", "mul", "softmax", "matmul_b1", "matmul_b2", "matmul_b4",
        "average_pool_add", "max_pool_add", "matmul_bias",
        "matmul_bias_relu", "matmul_bias_gelu", "matmul_bias_add",
        "matmul_bias_relu_matmul", "matmul_bias_gelu_matmul",
    };
    return names;
}

Kernel
buildKernel(const std::string &name, const Schedule &schedule)
{
    auto it = builders().find(name);
    if (it == builders().end())
        fatal("unknown kernel `" + name + "`");
    Kernel kernel;
    kernel.name = name;
    kernel.schedule = schedule;
    Ctx ctx{schedule.vector_bits};
    it->second(ctx, kernel);

    // Unrolling duplicates window instances without changing shapes.
    if (schedule.unroll > 1) {
        std::vector<HExprPtr> unrolled;
        for (int u = 0; u < schedule.unroll; ++u)
            for (const auto &window : kernel.windows)
                unrolled.push_back(window);
        kernel.windows = std::move(unrolled);
        kernel.iterations /= schedule.unroll;
    }
    kernel.iterations *= 64.0 / schedule.tile / 8.0;
    return kernel;
}

} // namespace hydride
