#include "hir/semantics.h"

#include "support/error.h"

namespace hydride {

std::vector<int64_t>
CanonicalSemantics::defaultParamValues() const
{
    std::vector<int64_t> values;
    values.reserve(params.size());
    for (const auto &info : params)
        values.push_back(info.default_value);
    return values;
}

int
CanonicalSemantics::outputWidth(const std::vector<int64_t> &param_values) const
{
    EvalEnv env;
    env.param_values = &param_values;
    const int64_t outer = evalInt(outer_count, env);
    const int64_t inner = evalInt(inner_count, env);
    const int64_t width = evalInt(elem_width, env);
    return static_cast<int>(outer * inner * width);
}

int
CanonicalSemantics::argWidth(int index,
                             const std::vector<int64_t> &param_values) const
{
    HYD_ASSERT(index >= 0 && index < static_cast<int>(bv_args.size()),
               "argWidth index out of range");
    EvalEnv env;
    env.param_values = &param_values;
    return static_cast<int>(evalInt(bv_args[index].width, env));
}

const ExprPtr &
CanonicalSemantics::templateFor(int64_t i, int64_t j) const
{
    switch (mode) {
      case TemplateMode::Uniform:
        return templates[0];
      case TemplateMode::ByInner:
        HYD_ASSERT(j < static_cast<int64_t>(templates.size()),
                   "inner index exceeds template count");
        return templates[j];
      case TemplateMode::ByOuter:
        HYD_ASSERT(i < static_cast<int64_t>(templates.size()),
                   "outer index exceeds template count");
        return templates[i];
    }
    panic("unknown TemplateMode");
}

BitVector
CanonicalSemantics::evaluate(const std::vector<BitVector> &args,
                             const std::vector<int64_t> &param_values,
                             const std::vector<int64_t> &int_arg_values) const
{
    HYD_ASSERT(int_arg_values.size() == int_args.size(),
               "integer argument count mismatch for " + name);
    EvalEnv env;
    env.bv_args = &args;
    env.param_values = &param_values;
    for (size_t i = 0; i < int_args.size(); ++i)
        env.named[int_args[i]] = int_arg_values[i];

    const int64_t outer = evalInt(outer_count, env);
    const int64_t inner = evalInt(inner_count, env);
    const int width = static_cast<int>(evalInt(elem_width, env));
    HYD_ASSERT(outer >= 1 && inner >= 1 && width >= 1,
               "degenerate canonical loop bounds");

    BitVector out(static_cast<int>(outer * inner * width));
    for (int64_t i = 0; i < outer; ++i) {
        for (int64_t j = 0; j < inner; ++j) {
            env.loop_i = i;
            env.loop_j = j;
            BitVector elem = evalBV(templateFor(i, j), env);
            HYD_ASSERT(elem.width() == width,
                       "template produced mis-sized element in " + name);
            out.setSlice(static_cast<int>((i * inner + j) * width), elem);
        }
    }
    return out;
}

bool
CanonicalSemantics::sameShape(const CanonicalSemantics &a,
                              const CanonicalSemantics &b)
{
    if (a.mode != b.mode || a.templates.size() != b.templates.size() ||
        a.bv_args.size() != b.bv_args.size() ||
        a.int_args.size() != b.int_args.size() ||
        a.params.size() != b.params.size()) {
        return false;
    }
    if (!Expr::equals(a.outer_count, b.outer_count) ||
        !Expr::equals(a.inner_count, b.inner_count) ||
        !Expr::equals(a.elem_width, b.elem_width)) {
        return false;
    }
    for (size_t i = 0; i < a.bv_args.size(); ++i)
        if (!Expr::equals(a.bv_args[i].width, b.bv_args[i].width))
            return false;
    for (size_t i = 0; i < a.templates.size(); ++i)
        if (!Expr::equals(a.templates[i], b.templates[i]))
            return false;
    return true;
}

uint64_t
CanonicalSemantics::shapeHash() const
{
    uint64_t h = static_cast<uint64_t>(mode) * 0x2545F4914F6CDD1Dull;
    h ^= templates.size() + bv_args.size() * 131 + params.size() * 65537 +
         int_args.size() * 8191;
    h ^= Expr::hashOf(outer_count) * 3;
    h ^= Expr::hashOf(inner_count) * 5;
    h ^= Expr::hashOf(elem_width) * 7;
    for (const auto &arg : bv_args)
        h ^= Expr::hashOf(arg.width) + (h << 6) + (h >> 2);
    for (const auto &tmpl : templates)
        h ^= Expr::hashOf(tmpl) + (h << 6) + (h >> 2);
    return h;
}

std::vector<BVBinOp>
CanonicalSemantics::bvBinOps() const
{
    std::vector<BVBinOp> ops;
    std::vector<ExprPtr> nodes;
    for (const auto &tmpl : templates)
        collectNodes(tmpl, nodes);
    for (const auto &node : nodes)
        if (node->kind == ExprKind::BVBin)
            ops.push_back(static_cast<BVBinOp>(node->value));
    return ops;
}

// ---- Statement IR ------------------------------------------------------------

StmtPtr
stmtFor(std::string var, ExprPtr lo, ExprPtr hi, std::vector<StmtPtr> body)
{
    auto stmt = std::make_shared<Stmt>();
    stmt->kind = StmtKind::For;
    stmt->var = std::move(var);
    stmt->lo = std::move(lo);
    stmt->hi = std::move(hi);
    stmt->body = std::move(body);
    return stmt;
}

StmtPtr
stmtSliceAssign(ExprPtr low, ExprPtr width, ExprPtr value)
{
    auto stmt = std::make_shared<Stmt>();
    stmt->kind = StmtKind::SliceAssign;
    stmt->low = std::move(low);
    stmt->width = std::move(width);
    stmt->value = std::move(value);
    return stmt;
}

StmtPtr
stmtLetInt(std::string var, ExprPtr value)
{
    auto stmt = std::make_shared<Stmt>();
    stmt->kind = StmtKind::LetInt;
    stmt->var = std::move(var);
    stmt->lo = std::move(value);
    return stmt;
}

namespace {

void
executeStmt(const StmtPtr &stmt, EvalEnv &env, BitVector &out)
{
    switch (stmt->kind) {
      case StmtKind::For: {
        const int64_t lo = evalInt(stmt->lo, env);
        const int64_t hi = evalInt(stmt->hi, env);
        for (int64_t it = lo; it <= hi; ++it) {
            env.named[stmt->var] = it;
            for (const auto &inner : stmt->body)
                executeStmt(inner, env, out);
        }
        env.named.erase(stmt->var);
        break;
      }
      case StmtKind::SliceAssign: {
        const int low = static_cast<int>(evalInt(stmt->low, env));
        const int width = static_cast<int>(evalInt(stmt->width, env));
        BitVector value = evalBV(stmt->value, env);
        HYD_ASSERT(value.width() == width,
                   "slice assignment width mismatch");
        out.setSlice(low, value);
        break;
      }
      case StmtKind::LetInt:
        env.named[stmt->var] = evalInt(stmt->lo, env);
        break;
    }
}

} // namespace

BitVector
SpecFunction::evaluate(const std::vector<BitVector> &args,
                       const std::vector<int64_t> &int_arg_values) const
{
    HYD_ASSERT(args.size() == bv_args.size(),
               "argument count mismatch for " + name);
    HYD_ASSERT(int_arg_values.size() == int_args.size(),
               "integer argument count mismatch for " + name);
    EvalEnv env;
    env.bv_args = &args;
    for (size_t i = 0; i < int_args.size(); ++i)
        env.named[int_args[i]] = int_arg_values[i];
    BitVector out(out_width);
    for (const auto &stmt : body)
        executeStmt(stmt, env, out);
    return out;
}

} // namespace hydride
