#include "hir/bitvector.h"

#include "support/error.h"
#include "support/rng.h"

#include <algorithm>

namespace hydride {

BitVector::BitVector(int width)
    : width_(width), words_(wordCount(width), 0)
{
    HYD_ASSERT(width >= 1 && width <= kMaxWidth, "bitvector width out of range");
}

BitVector
BitVector::fromUint(int width, uint64_t value)
{
    BitVector bv(width);
    bv.words_[0] = value;
    bv.clearUnusedBits();
    return bv;
}

BitVector
BitVector::fromInt(int width, int64_t value)
{
    BitVector bv(width);
    const uint64_t pattern = value < 0 ? ~0ull : 0ull;
    for (auto &word : bv.words_)
        word = pattern;
    bv.words_[0] = static_cast<uint64_t>(value);
    if (value < 0 && width > 64) {
        // Upper words already all-ones from the fill above.
    }
    bv.clearUnusedBits();
    return bv;
}

BitVector
BitVector::allOnes(int width)
{
    BitVector bv(width);
    for (auto &word : bv.words_)
        word = ~0ull;
    bv.clearUnusedBits();
    return bv;
}

BitVector
BitVector::random(int width, Rng &rng)
{
    BitVector bv(width);
    for (auto &word : bv.words_)
        word = rng.next();
    bv.clearUnusedBits();
    return bv;
}

void
BitVector::clearUnusedBits()
{
    const int used = width_ % 64;
    if (used != 0)
        words_.back() &= (~0ull >> (64 - used));
}

bool
BitVector::getBit(int index) const
{
    HYD_ASSERT(index >= 0 && index < width_, "bit index out of range");
    return (words_[index / 64] >> (index % 64)) & 1;
}

void
BitVector::setBit(int index, bool value)
{
    HYD_ASSERT(index >= 0 && index < width_, "bit index out of range");
    const uint64_t mask = 1ull << (index % 64);
    if (value)
        words_[index / 64] |= mask;
    else
        words_[index / 64] &= ~mask;
}

uint64_t
BitVector::toUint64() const
{
    return words_[0];
}

int64_t
BitVector::toInt64() const
{
    HYD_ASSERT(width_ <= 64, "toInt64 requires width <= 64");
    uint64_t value = words_[0];
    if (width_ < 64 && (value >> (width_ - 1)) & 1)
        value |= ~0ull << width_;
    return static_cast<int64_t>(value);
}

bool
BitVector::isZero() const
{
    for (uint64_t word : words_)
        if (word != 0)
            return false;
    return true;
}

std::string
BitVector::toHex() const
{
    static const char digits[] = "0123456789abcdef";
    const int nibbles = (width_ + 3) / 4;
    std::string out(nibbles, '0');
    for (int n = 0; n < nibbles; ++n) {
        const int bit = n * 4;
        uint64_t nib = (words_[bit / 64] >> (bit % 64)) & 0xF;
        if (bit % 64 > 60 && bit / 64 + 1 < static_cast<int>(words_.size()))
            nib |= (words_[bit / 64 + 1] << (64 - bit % 64)) & 0xF;
        out[nibbles - 1 - n] = digits[nib];
    }
    return out;
}

bool
BitVector::operator==(const BitVector &other) const
{
    return width_ == other.width_ && words_ == other.words_;
}

uint64_t
BitVector::hash() const
{
    uint64_t h = 0x9E3779B97F4A7C15ull ^ static_cast<uint64_t>(width_);
    for (uint64_t word : words_) {
        h ^= word + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    }
    return h;
}

BitVector
BitVector::zext(int new_width) const
{
    HYD_ASSERT(new_width >= width_, "zext must not shrink");
    BitVector out(new_width);
    std::copy(words_.begin(), words_.end(), out.words_.begin());
    return out;
}

BitVector
BitVector::sext(int new_width) const
{
    HYD_ASSERT(new_width >= width_, "sext must not shrink");
    BitVector out(new_width);
    std::copy(words_.begin(), words_.end(), out.words_.begin());
    if (signBit()) {
        // Fill bits [width_, new_width) with ones.
        for (int bit = width_; bit < new_width; ++bit)
            out.words_[bit / 64] |= 1ull << (bit % 64);
    }
    out.clearUnusedBits();
    return out;
}

BitVector
BitVector::trunc(int new_width) const
{
    HYD_ASSERT(new_width <= width_, "trunc must not grow");
    BitVector out(new_width);
    std::copy(words_.begin(), words_.begin() + wordCount(new_width),
              out.words_.begin());
    out.clearUnusedBits();
    return out;
}

BitVector
BitVector::extract(int low, int count) const
{
    HYD_ASSERT(low >= 0 && count >= 1 && low + count <= width_,
               "extract slice out of range");
    BitVector out(count);
    const int word_shift = low / 64;
    const int bit_shift = low % 64;
    for (int w = 0; w < wordCount(count); ++w) {
        uint64_t value = words_[word_shift + w] >> bit_shift;
        if (bit_shift != 0 &&
            word_shift + w + 1 < static_cast<int>(words_.size())) {
            value |= words_[word_shift + w + 1] << (64 - bit_shift);
        }
        out.words_[w] = value;
    }
    out.clearUnusedBits();
    return out;
}

void
BitVector::setSlice(int low, const BitVector &value)
{
    HYD_ASSERT(low >= 0 && low + value.width_ <= width_,
               "setSlice out of range");
    for (int bit = 0; bit < value.width_; ++bit)
        setBit(low + bit, value.getBit(bit));
}

BitVector
BitVector::concat(const BitVector &high, const BitVector &low)
{
    BitVector out(high.width_ + low.width_);
    out.setSlice(0, low);
    out.setSlice(low.width_, high);
    return out;
}

BitVector
BitVector::bvand(const BitVector &other) const
{
    HYD_ASSERT(width_ == other.width_, "bvand width mismatch");
    BitVector out(width_);
    for (size_t w = 0; w < words_.size(); ++w)
        out.words_[w] = words_[w] & other.words_[w];
    return out;
}

BitVector
BitVector::bvor(const BitVector &other) const
{
    HYD_ASSERT(width_ == other.width_, "bvor width mismatch");
    BitVector out(width_);
    for (size_t w = 0; w < words_.size(); ++w)
        out.words_[w] = words_[w] | other.words_[w];
    return out;
}

BitVector
BitVector::bvxor(const BitVector &other) const
{
    HYD_ASSERT(width_ == other.width_, "bvxor width mismatch");
    BitVector out(width_);
    for (size_t w = 0; w < words_.size(); ++w)
        out.words_[w] = words_[w] ^ other.words_[w];
    return out;
}

BitVector
BitVector::bvnot() const
{
    BitVector out(width_);
    for (size_t w = 0; w < words_.size(); ++w)
        out.words_[w] = ~words_[w];
    out.clearUnusedBits();
    return out;
}

BitVector
BitVector::shl(int amount) const
{
    HYD_ASSERT(amount >= 0, "negative shift");
    BitVector out(width_);
    if (amount >= width_)
        return out;
    for (int bit = width_ - 1; bit >= amount; --bit)
        out.setBit(bit, getBit(bit - amount));
    return out;
}

BitVector
BitVector::lshr(int amount) const
{
    HYD_ASSERT(amount >= 0, "negative shift");
    BitVector out(width_);
    if (amount >= width_)
        return out;
    for (int bit = 0; bit + amount < width_; ++bit)
        out.setBit(bit, getBit(bit + amount));
    return out;
}

BitVector
BitVector::ashr(int amount) const
{
    HYD_ASSERT(amount >= 0, "negative shift");
    const bool sign = signBit();
    BitVector out = sign ? allOnes(width_) : BitVector(width_);
    if (amount >= width_)
        return out;
    for (int bit = 0; bit + amount < width_; ++bit)
        out.setBit(bit, getBit(bit + amount));
    return out;
}

BitVector
BitVector::rotr(int amount) const
{
    amount = ((amount % width_) + width_) % width_;
    BitVector out(width_);
    for (int bit = 0; bit < width_; ++bit)
        out.setBit(bit, getBit((bit + amount) % width_));
    return out;
}

BitVector
BitVector::rotl(int amount) const
{
    return rotr(width_ - (((amount % width_) + width_) % width_));
}

BitVector
BitVector::add(const BitVector &other) const
{
    HYD_ASSERT(width_ == other.width_, "add width mismatch");
    BitVector out(width_);
    unsigned __int128 carry = 0;
    for (size_t w = 0; w < words_.size(); ++w) {
        unsigned __int128 sum = carry;
        sum += words_[w];
        sum += other.words_[w];
        out.words_[w] = static_cast<uint64_t>(sum);
        carry = sum >> 64;
    }
    out.clearUnusedBits();
    return out;
}

BitVector
BitVector::sub(const BitVector &other) const
{
    return add(other.neg());
}

BitVector
BitVector::neg() const
{
    return bvnot().add(fromUint(width_, 1));
}

BitVector
BitVector::mul(const BitVector &other) const
{
    HYD_ASSERT(width_ == other.width_, "mul width mismatch");
    BitVector out(width_);
    const size_t n = words_.size();
    std::vector<uint64_t> acc(n, 0);
    for (size_t i = 0; i < n; ++i) {
        if (words_[i] == 0)
            continue;
        unsigned __int128 carry = 0;
        for (size_t j = 0; i + j < n; ++j) {
            unsigned __int128 cur = acc[i + j];
            cur += static_cast<unsigned __int128>(words_[i]) * other.words_[j];
            cur += carry;
            acc[i + j] = static_cast<uint64_t>(cur);
            carry = cur >> 64;
        }
    }
    out.words_ = std::move(acc);
    out.clearUnusedBits();
    return out;
}

BitVector
BitVector::udiv(const BitVector &other) const
{
    HYD_ASSERT(width_ == other.width_, "udiv width mismatch");
    if (other.isZero())
        return allOnes(width_);
    // Restoring long division, bit at a time. Slow but exact and only
    // used for averaging/scaling semantics with small widths.
    BitVector quotient(width_);
    BitVector remainder(width_);
    for (int bit = width_ - 1; bit >= 0; --bit) {
        remainder = remainder.shl(1);
        remainder.setBit(0, getBit(bit));
        if (!remainder.ult(other)) {
            remainder = remainder.sub(other);
            quotient.setBit(bit, true);
        }
    }
    return quotient;
}

BitVector
BitVector::urem(const BitVector &other) const
{
    HYD_ASSERT(width_ == other.width_, "urem width mismatch");
    if (other.isZero())
        return *this;
    return sub(udiv(other).mul(other));
}

BitVector
BitVector::sdiv(const BitVector &other) const
{
    const bool neg_a = signBit();
    const bool neg_b = other.signBit();
    const BitVector mag_a = neg_a ? neg() : *this;
    const BitVector mag_b = neg_b ? other.neg() : other;
    BitVector q = mag_a.udiv(mag_b);
    return (neg_a != neg_b) ? q.neg() : q;
}

BitVector
BitVector::srem(const BitVector &other) const
{
    const bool neg_a = signBit();
    const BitVector mag_a = neg_a ? neg() : *this;
    const BitVector mag_b = other.signBit() ? other.neg() : other;
    BitVector r = mag_a.urem(mag_b);
    return neg_a ? r.neg() : r;
}

BitVector
BitVector::addSatS(const BitVector &other) const
{
    const BitVector wide = sext(width_ + 1).add(other.sext(width_ + 1));
    return wide.satNarrowS(width_);
}

BitVector
BitVector::addSatU(const BitVector &other) const
{
    const BitVector wide = zext(width_ + 1).add(other.zext(width_ + 1));
    if (wide.getBit(width_))
        return allOnes(width_);
    return wide.trunc(width_);
}

BitVector
BitVector::subSatS(const BitVector &other) const
{
    const BitVector wide = sext(width_ + 1).sub(other.sext(width_ + 1));
    return wide.satNarrowS(width_);
}

BitVector
BitVector::subSatU(const BitVector &other) const
{
    if (ult(other))
        return BitVector(width_);
    return sub(other);
}

BitVector
BitVector::satNarrowS(int to_width) const
{
    HYD_ASSERT(to_width <= width_, "satNarrowS must narrow");
    const BitVector max = allOnes(width_).lshr(width_ - to_width + 1);
    const BitVector min = max.bvnot();
    if (slt(min))
        return min.trunc(to_width);
    if (max.slt(*this))
        return max.trunc(to_width);
    return trunc(to_width);
}

BitVector
BitVector::satNarrowU(int to_width) const
{
    HYD_ASSERT(to_width <= width_, "satNarrowU must narrow");
    if (signBit())
        return BitVector(to_width);
    BitVector max(width_);
    for (int bit = 0; bit < to_width; ++bit)
        max.setBit(bit, true);
    if (max.ult(*this))
        return max.trunc(to_width);
    return trunc(to_width);
}

bool
BitVector::ult(const BitVector &other) const
{
    HYD_ASSERT(width_ == other.width_, "ult width mismatch");
    for (int w = static_cast<int>(words_.size()) - 1; w >= 0; --w) {
        if (words_[w] != other.words_[w])
            return words_[w] < other.words_[w];
    }
    return false;
}

bool
BitVector::ule(const BitVector &other) const
{
    return !other.ult(*this);
}

bool
BitVector::slt(const BitVector &other) const
{
    const bool sign_a = signBit();
    const bool sign_b = other.signBit();
    if (sign_a != sign_b)
        return sign_a;
    return ult(other);
}

bool
BitVector::sle(const BitVector &other) const
{
    return !other.slt(*this);
}

BitVector
BitVector::minS(const BitVector &other) const
{
    return slt(other) ? *this : other;
}

BitVector
BitVector::maxS(const BitVector &other) const
{
    return slt(other) ? other : *this;
}

BitVector
BitVector::minU(const BitVector &other) const
{
    return ult(other) ? *this : other;
}

BitVector
BitVector::maxU(const BitVector &other) const
{
    return ult(other) ? other : *this;
}

BitVector
BitVector::absS() const
{
    return signBit() ? neg() : *this;
}

BitVector
BitVector::avgU(const BitVector &other) const
{
    BitVector wide = zext(width_ + 1).add(other.zext(width_ + 1));
    wide = wide.add(fromUint(width_ + 1, 1));
    return wide.lshr(1).trunc(width_);
}

BitVector
BitVector::avgS(const BitVector &other) const
{
    BitVector wide = sext(width_ + 1).add(other.sext(width_ + 1));
    wide = wide.add(fromUint(width_ + 1, 1));
    return wide.ashr(1).trunc(width_);
}

BitVector
BitVector::popcount() const
{
    int count = 0;
    for (uint64_t word : words_)
        count += __builtin_popcountll(word);
    return fromUint(width_, static_cast<uint64_t>(count));
}

} // namespace hydride
