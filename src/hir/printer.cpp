#include "hir/printer.h"

#include "support/strings.h"

#include <sstream>

namespace hydride {

namespace {

void
printExprInto(const ExprPtr &expr, std::ostringstream &os)
{
    switch (expr->kind) {
      case ExprKind::IntConst:
        os << expr->value;
        return;
      case ExprKind::Param:
        os << (expr->name.empty() ? format("p%d", static_cast<int>(expr->value))
                                  : expr->name);
        return;
      case ExprKind::LoopVar:
        os << (expr->value == 0 ? "%i" : "%j");
        return;
      case ExprKind::NamedVar:
        os << "%" << expr->name;
        return;
      case ExprKind::IntBin:
        os << "(" << intBinOpName(static_cast<IntBinOp>(expr->value));
        break;
      case ExprKind::ArgBV:
        os << "%arg" << expr->value;
        return;
      case ExprKind::BVConst:
        os << "(bv";
        break;
      case ExprKind::BVBin:
        os << "(" << bvBinOpName(static_cast<BVBinOp>(expr->value));
        break;
      case ExprKind::BVUn:
        os << "(" << bvUnOpName(static_cast<BVUnOp>(expr->value));
        break;
      case ExprKind::BVCast:
        os << "(" << bvCastOpName(static_cast<BVCastOp>(expr->value));
        break;
      case ExprKind::Extract:
        os << "(extract";
        break;
      case ExprKind::Concat:
        os << "(concat";
        break;
      case ExprKind::BVCmp:
        os << "(cmp." << bvCmpOpName(static_cast<BVCmpOp>(expr->value));
        break;
      case ExprKind::Select:
        os << "(select";
        break;
      case ExprKind::Hole:
        os << "(hole";
        break;
    }
    for (const auto &kid : expr->kids) {
        os << " ";
        printExprInto(kid, os);
    }
    os << ")";
}

} // namespace

std::string
printExpr(const ExprPtr &expr)
{
    std::ostringstream os;
    printExprInto(expr, os);
    return os.str();
}

std::string
printSemantics(const CanonicalSemantics &sem)
{
    std::ostringstream os;
    os << "def " << sem.name << " [" << sem.isa << "] (";
    for (size_t i = 0; i < sem.bv_args.size(); ++i) {
        if (i)
            os << ", ";
        os << sem.bv_args[i].name << ": bv[" << printExpr(sem.bv_args[i].width)
           << "]";
    }
    os << ")";
    if (!sem.params.empty()) {
        os << " params(";
        for (size_t i = 0; i < sem.params.size(); ++i) {
            if (i)
                os << ", ";
            os << sem.params[i].name << "=" << sem.params[i].default_value;
        }
        os << ")";
    }
    os << "\n";
    os << "  for %i in 0.." << printExpr(sem.outer_count) << " {\n";
    os << "    for %j in 0.." << printExpr(sem.inner_count)
       << " {  // elem width " << printExpr(sem.elem_width) << "\n";
    const char *selector = sem.mode == TemplateMode::Uniform ? "uniform"
                           : sem.mode == TemplateMode::ByInner ? "by %j"
                                                               : "by %i";
    for (size_t t = 0; t < sem.templates.size(); ++t) {
        os << "      out[%i,%j] (" << selector << " #" << t
           << ") = " << printExpr(sem.templates[t]) << "\n";
    }
    os << "    }\n  }\n";
    return os.str();
}

namespace {

void
printStmtInto(const StmtPtr &stmt, int indent, std::ostringstream &os)
{
    const std::string pad(static_cast<size_t>(indent) * 2, ' ');
    switch (stmt->kind) {
      case StmtKind::For:
        os << pad << "for " << stmt->var << " := " << printExpr(stmt->lo)
           << " to " << printExpr(stmt->hi) << " {\n";
        for (const auto &inner : stmt->body)
            printStmtInto(inner, indent + 1, os);
        os << pad << "}\n";
        break;
      case StmtKind::SliceAssign:
        os << pad << "dst[" << printExpr(stmt->low) << " +: "
           << printExpr(stmt->width) << "] := " << printExpr(stmt->value)
           << "\n";
        break;
      case StmtKind::LetInt:
        os << pad << stmt->var << " := " << printExpr(stmt->lo) << "\n";
        break;
    }
}

} // namespace

std::string
printSpecFunction(const SpecFunction &spec)
{
    std::ostringstream os;
    os << "spec " << spec.name << " [" << spec.isa << "] (";
    for (size_t i = 0; i < spec.bv_args.size(); ++i) {
        if (i)
            os << ", ";
        os << spec.bv_args[i].name << ": bv[" << printExpr(spec.bv_args[i].width)
           << "]";
    }
    os << ") -> bv[" << spec.out_width << "] {\n";
    for (const auto &stmt : spec.body)
        printStmtInto(stmt, 1, os);
    os << "}\n";
    return os.str();
}

} // namespace hydride
