/**
 * @file
 * The Hydride IR expression language (paper Fig. 4).
 *
 * Hydride IR is the executable semantics language into which vendor
 * pseudocode is parsed, over which similarity checking reasons, and
 * which defines the meaning of every AutoLLVM IR operation. It is a
 * small, typed, purely functional expression language over two types:
 *
 *  - `Int`: mathematical integers used for indices, widths, loop
 *    iterators and the numerical parameters (k1..kr) that similarity
 *    checking abstracts into symbolic parameters (alpha1..alphar);
 *  - `BV`: fixed-width bitvectors (values of `BitVector`), whose
 *    widths are themselves Int-typed expressions so that one symbolic
 *    semantics covers a whole family of concrete instructions.
 *
 * Expressions are immutable, shared (DAG) nodes. An instruction's
 * canonical semantics wraps a single element-producing expression in
 * a two-level loop nest; see semantics.h.
 */
#ifndef HYDRIDE_HIR_EXPR_H
#define HYDRIDE_HIR_EXPR_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "hir/bitvector.h"

namespace hydride {

/** Node discriminator for Hydride IR expressions. */
enum class ExprKind {
    // Int-typed.
    IntConst,   ///< Literal integer.
    Param,      ///< Numerical instruction parameter (k_i / alpha_i).
    LoopVar,    ///< Loop iterator: level 0 = lane, level 1 = element.
    NamedVar,   ///< Let-bound or spec-local integer variable (pre-canonical).
    IntBin,     ///< Integer arithmetic.
    // BV-typed.
    ArgBV,      ///< Input bitvector argument, by index.
    BVConst,    ///< Bitvector constant: width and value are Int exprs.
    BVBin,      ///< Binary bitvector operation.
    BVUn,       ///< Unary bitvector operation.
    BVCast,     ///< Width-changing cast (sext/zext/trunc/saturate).
    Extract,    ///< Bit-slice extract: (bv, low, width).
    Concat,     ///< Concatenation (operand 0 is the high part).
    BVCmp,      ///< Comparison producing a 1-bit bitvector.
    Select,     ///< (cond bv1, then, else).
    Hole,       ///< Synthesis hole inserted by the similarity engine.
};

/** Integer binary operators. */
enum class IntBinOp { Add, Sub, Mul, Div, Mod, Min, Max };

/** Bitvector binary operators (both operands same width). */
enum class BVBinOp {
    Add, Sub, Mul, UDiv, URem,
    And, Or, Xor,
    Shl, LShr, AShr,        ///< Shift amount is operand 1 (same width).
    AddSatS, AddSatU, SubSatS, SubSatU,
    MinS, MaxS, MinU, MaxU,
    AvgU, AvgS,
};

/** Bitvector unary operators. */
enum class BVUnOp { Not, Neg, AbsS, Popcount };

/** Width-changing casts; target width is an Int expr operand. */
enum class BVCastOp { SExt, ZExt, Trunc, SatNarrowS, SatNarrowU };

/** Comparison operators; result is a 1-bit bitvector (1 = true). */
enum class BVCmpOp { Eq, Ne, Ult, Ule, Slt, Sle };

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/**
 * Where a node came from in the vendor manual: the dialect-qualified
 * instruction ("x86:_mm_add_epi16") plus the 1-based pseudocode line.
 * The parsers attach locations; rewriting preserves them on rebuilt
 * nodes, so diagnostics can usually point at the offending pseudocode
 * line even after canonicalization. Locations are metadata only:
 * structural equality and hashing ignore them.
 */
struct SourceLoc
{
    std::string unit; ///< "<dialect>:<instruction>".
    int line = 0;     ///< 1-based line in the pseudocode; 0 = unknown.

    bool known() const { return line > 0; }
    /** "x86:_mm_add_epi16:3"; empty string when unknown. */
    std::string str() const;
};

/**
 * One immutable Hydride IR node. Construct through the factory
 * functions below, never directly.
 */
class Expr
{
  public:
    ExprKind kind;
    /// IntConst value; Param/ArgBV/LoopVar index; operator code for
    /// IntBin/BVBin/BVUn/BVCast/BVCmp (cast to the right enum).
    int64_t value = 0;
    /// NamedVar / Param display name.
    std::string name;
    /// Operands; Int operands (widths, indices) live here too.
    std::vector<ExprPtr> kids;
    /// Vendor-manual provenance; ignored by equals()/hashOf().
    SourceLoc loc;

    /** True for Int-typed nodes (see class comment). */
    bool isInt() const;

    /** Structural equality (DAG-aware via pointer fast path). */
    static bool equals(const ExprPtr &a, const ExprPtr &b);

    /** Structural hash, consistent with equals(). */
    static uint64_t hashOf(const ExprPtr &expr);

    /** Number of nodes in the tree (shared nodes counted repeatedly). */
    static int sizeOf(const ExprPtr &expr);
};

// ---- Factories -----------------------------------------------------------

ExprPtr intConst(int64_t value);
ExprPtr param(int index, std::string name);
ExprPtr loopVar(int level);
ExprPtr namedVar(std::string name);
ExprPtr intBin(IntBinOp op, ExprPtr a, ExprPtr b);

ExprPtr argBV(int index);
ExprPtr bvConst(ExprPtr width, ExprPtr value);
ExprPtr bvBin(BVBinOp op, ExprPtr a, ExprPtr b);
ExprPtr bvUn(BVUnOp op, ExprPtr a);
ExprPtr bvCast(BVCastOp op, ExprPtr a, ExprPtr width);
ExprPtr extract(ExprPtr bv, ExprPtr low, ExprPtr width);
ExprPtr concat(ExprPtr high, ExprPtr low);
ExprPtr bvCmp(BVCmpOp op, ExprPtr a, ExprPtr b);
ExprPtr select(ExprPtr cond, ExprPtr then_e, ExprPtr else_e);
ExprPtr hole(std::vector<ExprPtr> context);

// ---- Source locations ------------------------------------------------------

/**
 * Tag `expr` and every descendant that has no location yet with
 * `loc`, stopping at already-tagged subtrees. Only call on freshly
 * parsed trees whose nodes are not shared with other expressions (the
 * parsers' use case): tagging mutates nodes in place.
 */
void tagSourceLoc(const ExprPtr &expr, const SourceLoc &loc);

/** First known location in a pre-order walk; unknown if none. */
SourceLoc findSourceLoc(const ExprPtr &expr);

// Convenience shorthand for common index arithmetic.
inline ExprPtr addI(ExprPtr a, ExprPtr b) { return intBin(IntBinOp::Add, a, b); }
inline ExprPtr subI(ExprPtr a, ExprPtr b) { return intBin(IntBinOp::Sub, a, b); }
inline ExprPtr mulI(ExprPtr a, ExprPtr b) { return intBin(IntBinOp::Mul, a, b); }
inline ExprPtr divI(ExprPtr a, ExprPtr b) { return intBin(IntBinOp::Div, a, b); }
inline ExprPtr modI(ExprPtr a, ExprPtr b) { return intBin(IntBinOp::Mod, a, b); }

// ---- Evaluation ------------------------------------------------------------

/**
 * Evaluation environment: concrete argument values, concrete values
 * for the numerical parameters, loop iterator values, and (for the
 * pre-canonical statement interpreter) named variable bindings.
 */
struct EvalEnv
{
    const std::vector<BitVector> *bv_args = nullptr;
    const std::vector<int64_t> *param_values = nullptr;
    int64_t loop_i = 0;
    int64_t loop_j = 0;
    std::unordered_map<std::string, int64_t> named;
};

/** Evaluate an Int-typed expression. */
int64_t evalInt(const ExprPtr &expr, const EvalEnv &env);

/** Evaluate a BV-typed expression. */
BitVector evalBV(const ExprPtr &expr, const EvalEnv &env);

/**
 * The shift-amount clamp used when evaluating Shl/LShr/AShr: amounts
 * >= kMaxWidth (or with any high word bit set) behave as a full
 * shift-out. Exposed so the symbolic evaluator mirrors it exactly.
 */
int shiftAmountOf(const BitVector &amount);

/** Apply a BV binary operator exactly as evalBV does (including the
 *  shift-amount clamp). Shared with the symbolic evaluator. */
BitVector applyBVBinOp(BVBinOp op, const BitVector &a, const BitVector &b);

// ---- Rewriting --------------------------------------------------------------

/**
 * Replace nodes: wherever `pred` returns a non-null replacement, use
 * it; otherwise rebuild with rewritten children.
 */
ExprPtr rewrite(const ExprPtr &expr,
                const std::function<ExprPtr(const ExprPtr &)> &pred);

/** Constant-fold and algebraically normalize (x+0, x*1, commutative
 *  operand ordering, nested constant folding). */
ExprPtr simplify(const ExprPtr &expr);

/** Collect every node (pre-order) into `out`. */
void collectNodes(const ExprPtr &expr, std::vector<ExprPtr> &out);

/** Printable operator names (for printers and diagnostics). */
const char *intBinOpName(IntBinOp op);
const char *bvBinOpName(BVBinOp op);
const char *bvUnOpName(BVUnOp op);
const char *bvCastOpName(BVCastOp op);
const char *bvCmpOpName(BVCmpOp op);

} // namespace hydride

#endif // HYDRIDE_HIR_EXPR_H
