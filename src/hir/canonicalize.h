/**
 * @file
 * Canonicalization of parsed pseudocode into the two-level loop form
 * (paper §3.3, "Canonicalization of Hydride IR code").
 *
 * The canonicalizer performs, in Hydride-paper terms: function/let
 * inlining, constant propagation, loop rerolling of (partially)
 * unrolled specifications, and insertion of an artificial inner loop
 * for plain SIMD instructions, so that every instruction's semantics
 * becomes `for lane i { for element j { out[i,j] = template(i,j) } }`.
 *
 * Two strategies are attempted in order:
 *
 *  1. *Structural*: the spec's own FOR structure is mapped directly
 *     onto the canonical loop nest (covers well-formed vendor loops,
 *     keeps indices fully symbolic so that cross-element-size
 *     similarity survives).
 *  2. *Unroll-and-reroll*: the body is fully unrolled into per-element
 *     value expressions, which are then anti-unified back into loop
 *     templates whose varying constants are refit as affine functions
 *     of the loop iterators (covers hand-unrolled vendor pseudocode).
 *
 * Every successful canonicalization is validated by differential
 * testing against the statement-form interpreter on random inputs.
 */
#ifndef HYDRIDE_HIR_CANONICALIZE_H
#define HYDRIDE_HIR_CANONICALIZE_H

#include <string>

#include "hir/semantics.h"

namespace hydride {

/** Outcome of canonicalization. */
struct CanonicalizeResult
{
    bool ok = false;
    CanonicalSemantics sem;
    std::string error;
    /** Which strategy succeeded ("structural" or "reroll"). */
    std::string strategy;
};

/** Canonicalize one parsed spec function. */
CanonicalizeResult canonicalize(const SpecFunction &spec);

/**
 * Anti-unify a list of expressions that are structurally identical
 * except for integer constants; differing constants are refit as
 * affine functions `base + stride * loopVar(var_level)` of the
 * instance index. Returns nullptr when the structures diverge or the
 * constants are not affine in the instance index.
 */
ExprPtr antiUnifyAffine(const std::vector<ExprPtr> &instances,
                        int var_level);

} // namespace hydride

#endif // HYDRIDE_HIR_CANONICALIZE_H
