#include "hir/expr.h"

#include "support/error.h"
#include "support/strings.h"

#include <algorithm>

namespace hydride {

namespace {

ExprPtr
make(ExprKind kind, int64_t value, std::string name,
     std::vector<ExprPtr> kids)
{
    auto node = std::make_shared<Expr>();
    node->kind = kind;
    node->value = value;
    node->name = std::move(name);
    node->kids = std::move(kids);
    return node;
}

/**
 * A linear combination of opaque integer terms plus a constant, used
 * to cancel symbolic terms in index arithmetic (e.g. slice widths
 * like `(i+7) - i + 1`).
 */
struct LinComb
{
    std::vector<std::pair<ExprPtr, int64_t>> terms;
    int64_t constant = 0;
    bool ok = true;
};

void
linAddTerm(LinComb &lin, const ExprPtr &expr, int64_t coeff)
{
    for (auto &term : lin.terms) {
        if (Expr::equals(term.first, expr)) {
            term.second += coeff;
            return;
        }
    }
    lin.terms.emplace_back(expr, coeff);
}

void
linearize(const ExprPtr &expr, int64_t scale, LinComb &lin)
{
    if (!lin.ok)
        return;
    if (expr->kind == ExprKind::IntConst) {
        lin.constant += scale * expr->value;
        return;
    }
    if (expr->kind == ExprKind::IntBin) {
        const auto op = static_cast<IntBinOp>(expr->value);
        if (op == IntBinOp::Add) {
            linearize(expr->kids[0], scale, lin);
            linearize(expr->kids[1], scale, lin);
            return;
        }
        if (op == IntBinOp::Sub) {
            linearize(expr->kids[0], scale, lin);
            linearize(expr->kids[1], -scale, lin);
            return;
        }
        if (op == IntBinOp::Mul) {
            if (expr->kids[0]->kind == ExprKind::IntConst) {
                linearize(expr->kids[1], scale * expr->kids[0]->value, lin);
                return;
            }
            if (expr->kids[1]->kind == ExprKind::IntConst) {
                linearize(expr->kids[0], scale * expr->kids[1]->value, lin);
                return;
            }
        }
    }
    // Opaque term (variable, div/mod, parameter, ...).
    linAddTerm(lin, expr, scale);
}

int64_t
applyIntBin(IntBinOp op, int64_t a, int64_t b)
{
    switch (op) {
      case IntBinOp::Add: return a + b;
      case IntBinOp::Sub: return a - b;
      case IntBinOp::Mul: return a * b;
      case IntBinOp::Div:
        HYD_ASSERT(b != 0, "integer division by zero in Hydride IR");
        // INT64_MIN / -1 overflows (C++ UB); wrap like the bitvector ops.
        if (a == INT64_MIN && b == -1)
            return INT64_MIN;
        return a / b;
      case IntBinOp::Mod:
        HYD_ASSERT(b != 0, "integer modulo by zero in Hydride IR");
        if (a == INT64_MIN && b == -1)
            return 0;
        return a % b;
      case IntBinOp::Min: return std::min(a, b);
      case IntBinOp::Max: return std::max(a, b);
    }
    panic("unknown IntBinOp");
}

} // namespace

std::string
SourceLoc::str() const
{
    if (!known())
        return {};
    return unit + ":" + std::to_string(line);
}

void
tagSourceLoc(const ExprPtr &expr, const SourceLoc &loc)
{
    if (!expr || expr->loc.known())
        return;
    // The node was freshly built by a parser and is not yet shared
    // outside this tree, so in-place tagging is safe.
    const_cast<Expr &>(*expr).loc = loc;
    for (const auto &kid : expr->kids)
        tagSourceLoc(kid, loc);
}

SourceLoc
findSourceLoc(const ExprPtr &expr)
{
    if (!expr)
        return {};
    if (expr->loc.known())
        return expr->loc;
    for (const auto &kid : expr->kids) {
        SourceLoc loc = findSourceLoc(kid);
        if (loc.known())
            return loc;
    }
    return {};
}

bool
Expr::isInt() const
{
    switch (kind) {
      case ExprKind::IntConst:
      case ExprKind::Param:
      case ExprKind::LoopVar:
      case ExprKind::NamedVar:
      case ExprKind::IntBin:
        return true;
      default:
        return false;
    }
}

bool
Expr::equals(const ExprPtr &a, const ExprPtr &b)
{
    if (a.get() == b.get())
        return true;
    if (!a || !b)
        return false;
    if (a->kind != b->kind || a->value != b->value || a->name != b->name ||
        a->kids.size() != b->kids.size()) {
        return false;
    }
    for (size_t i = 0; i < a->kids.size(); ++i)
        if (!equals(a->kids[i], b->kids[i]))
            return false;
    return true;
}

uint64_t
Expr::hashOf(const ExprPtr &expr)
{
    if (!expr)
        return 0;
    uint64_t h = static_cast<uint64_t>(expr->kind) * 0x9E3779B97F4A7C15ull;
    h ^= static_cast<uint64_t>(expr->value) + (h << 6) + (h >> 2);
    for (char c : expr->name)
        h = h * 131 + static_cast<unsigned char>(c);
    for (const auto &kid : expr->kids)
        h ^= hashOf(kid) + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    return h;
}

int
Expr::sizeOf(const ExprPtr &expr)
{
    if (!expr)
        return 0;
    int n = 1;
    for (const auto &kid : expr->kids)
        n += sizeOf(kid);
    return n;
}

// ---- Factories -------------------------------------------------------------

ExprPtr
intConst(int64_t value)
{
    return make(ExprKind::IntConst, value, {}, {});
}

ExprPtr
param(int index, std::string name)
{
    return make(ExprKind::Param, index, std::move(name), {});
}

ExprPtr
loopVar(int level)
{
    HYD_ASSERT(level == 0 || level == 1, "loop nest is two levels deep");
    return make(ExprKind::LoopVar, level, {}, {});
}

ExprPtr
namedVar(std::string name)
{
    return make(ExprKind::NamedVar, 0, std::move(name), {});
}

ExprPtr
intBin(IntBinOp op, ExprPtr a, ExprPtr b)
{
    HYD_ASSERT(a->isInt() && b->isInt(), "intBin operands must be Int");
    return make(ExprKind::IntBin, static_cast<int64_t>(op), {},
                {std::move(a), std::move(b)});
}

ExprPtr
argBV(int index)
{
    return make(ExprKind::ArgBV, index, {}, {});
}

ExprPtr
bvConst(ExprPtr width, ExprPtr value)
{
    HYD_ASSERT(width->isInt() && value->isInt(),
               "bvConst width/value must be Int");
    return make(ExprKind::BVConst, 0, {}, {std::move(width), std::move(value)});
}

ExprPtr
bvBin(BVBinOp op, ExprPtr a, ExprPtr b)
{
    HYD_ASSERT(!a->isInt() && !b->isInt(), "bvBin operands must be BV");
    return make(ExprKind::BVBin, static_cast<int64_t>(op), {},
                {std::move(a), std::move(b)});
}

ExprPtr
bvUn(BVUnOp op, ExprPtr a)
{
    HYD_ASSERT(!a->isInt(), "bvUn operand must be BV");
    return make(ExprKind::BVUn, static_cast<int64_t>(op), {}, {std::move(a)});
}

ExprPtr
bvCast(BVCastOp op, ExprPtr a, ExprPtr width)
{
    HYD_ASSERT(!a->isInt() && width->isInt(), "bvCast takes (BV, Int)");
    return make(ExprKind::BVCast, static_cast<int64_t>(op), {},
                {std::move(a), std::move(width)});
}

ExprPtr
extract(ExprPtr bv, ExprPtr low, ExprPtr width)
{
    HYD_ASSERT(!bv->isInt() && low->isInt() && width->isInt(),
               "extract takes (BV, Int, Int)");
    return make(ExprKind::Extract, 0, {},
                {std::move(bv), std::move(low), std::move(width)});
}

ExprPtr
concat(ExprPtr high, ExprPtr low)
{
    HYD_ASSERT(!high->isInt() && !low->isInt(), "concat operands must be BV");
    return make(ExprKind::Concat, 0, {}, {std::move(high), std::move(low)});
}

ExprPtr
bvCmp(BVCmpOp op, ExprPtr a, ExprPtr b)
{
    HYD_ASSERT(!a->isInt() && !b->isInt(), "bvCmp operands must be BV");
    return make(ExprKind::BVCmp, static_cast<int64_t>(op), {},
                {std::move(a), std::move(b)});
}

ExprPtr
select(ExprPtr cond, ExprPtr then_e, ExprPtr else_e)
{
    HYD_ASSERT(!cond->isInt() && !then_e->isInt() && !else_e->isInt(),
               "select operands must be BV");
    return make(ExprKind::Select, 0, {},
                {std::move(cond), std::move(then_e), std::move(else_e)});
}

ExprPtr
hole(std::vector<ExprPtr> context)
{
    return make(ExprKind::Hole, 0, {}, std::move(context));
}

// ---- Evaluation --------------------------------------------------------------

int64_t
evalInt(const ExprPtr &expr, const EvalEnv &env)
{
    switch (expr->kind) {
      case ExprKind::IntConst:
        return expr->value;
      case ExprKind::Param: {
        HYD_ASSERT(env.param_values &&
                   expr->value < static_cast<int64_t>(env.param_values->size()),
                   "parameter value missing during evaluation");
        return (*env.param_values)[expr->value];
      }
      case ExprKind::LoopVar:
        return expr->value == 0 ? env.loop_i : env.loop_j;
      case ExprKind::NamedVar: {
        auto it = env.named.find(expr->name);
        HYD_ASSERT(it != env.named.end(),
                   "unbound named variable: " + expr->name);
        return it->second;
      }
      case ExprKind::IntBin:
        return applyIntBin(static_cast<IntBinOp>(expr->value),
                           evalInt(expr->kids[0], env),
                           evalInt(expr->kids[1], env));
      default:
        panic("evalInt on a BV-typed node");
    }
}

int
shiftAmountOf(const BitVector &amount)
{
    // Clamp enormous shift amounts: any amount >= width behaves like
    // width (full shift-out), and width <= kMaxWidth.
    uint64_t raw = amount.toUint64();
    for (int w = 1; w * 64 < amount.width(); ++w) {
        if (!amount.extract(w * 64, std::min(64, amount.width() - w * 64))
                 .isZero()) {
            return BitVector::kMaxWidth;
        }
    }
    if (raw > static_cast<uint64_t>(BitVector::kMaxWidth))
        return BitVector::kMaxWidth;
    return static_cast<int>(raw);
}

BitVector
applyBVBinOp(BVBinOp op, const BitVector &a, const BitVector &b)
{
    switch (op) {
      case BVBinOp::Add: return a.add(b);
      case BVBinOp::Sub: return a.sub(b);
      case BVBinOp::Mul: return a.mul(b);
      case BVBinOp::UDiv: return a.udiv(b);
      case BVBinOp::URem: return a.urem(b);
      case BVBinOp::And: return a.bvand(b);
      case BVBinOp::Or: return a.bvor(b);
      case BVBinOp::Xor: return a.bvxor(b);
      case BVBinOp::Shl: return a.shl(shiftAmountOf(b));
      case BVBinOp::LShr: return a.lshr(shiftAmountOf(b));
      case BVBinOp::AShr: return a.ashr(shiftAmountOf(b));
      case BVBinOp::AddSatS: return a.addSatS(b);
      case BVBinOp::AddSatU: return a.addSatU(b);
      case BVBinOp::SubSatS: return a.subSatS(b);
      case BVBinOp::SubSatU: return a.subSatU(b);
      case BVBinOp::MinS: return a.minS(b);
      case BVBinOp::MaxS: return a.maxS(b);
      case BVBinOp::MinU: return a.minU(b);
      case BVBinOp::MaxU: return a.maxU(b);
      case BVBinOp::AvgU: return a.avgU(b);
      case BVBinOp::AvgS: return a.avgS(b);
    }
    panic("unknown BVBinOp");
}

BitVector
evalBV(const ExprPtr &expr, const EvalEnv &env)
{
    switch (expr->kind) {
      case ExprKind::ArgBV: {
        HYD_ASSERT(env.bv_args &&
                   expr->value < static_cast<int64_t>(env.bv_args->size()),
                   "bitvector argument missing during evaluation");
        return (*env.bv_args)[expr->value];
      }
      case ExprKind::BVConst: {
        const int width = static_cast<int>(evalInt(expr->kids[0], env));
        const int64_t value = evalInt(expr->kids[1], env);
        return BitVector::fromInt(width, value);
      }
      case ExprKind::BVBin: {
        const BitVector a = evalBV(expr->kids[0], env);
        const BitVector b = evalBV(expr->kids[1], env);
        HYD_ASSERT(a.width() == b.width(),
                   "bvBin operand width mismatch during evaluation");
        return applyBVBinOp(static_cast<BVBinOp>(expr->value), a, b);
      }
      case ExprKind::BVUn: {
        const BitVector a = evalBV(expr->kids[0], env);
        switch (static_cast<BVUnOp>(expr->value)) {
          case BVUnOp::Not: return a.bvnot();
          case BVUnOp::Neg: return a.neg();
          case BVUnOp::AbsS: return a.absS();
          case BVUnOp::Popcount: return a.popcount();
        }
        panic("unknown BVUnOp");
      }
      case ExprKind::BVCast: {
        const BitVector a = evalBV(expr->kids[0], env);
        const int width = static_cast<int>(evalInt(expr->kids[1], env));
        switch (static_cast<BVCastOp>(expr->value)) {
          case BVCastOp::SExt: return a.sext(width);
          case BVCastOp::ZExt: return a.zext(width);
          case BVCastOp::Trunc: return a.trunc(width);
          case BVCastOp::SatNarrowS: return a.satNarrowS(width);
          case BVCastOp::SatNarrowU: return a.satNarrowU(width);
        }
        panic("unknown BVCastOp");
      }
      case ExprKind::Extract: {
        const BitVector bv = evalBV(expr->kids[0], env);
        const int low = static_cast<int>(evalInt(expr->kids[1], env));
        const int width = static_cast<int>(evalInt(expr->kids[2], env));
        return bv.extract(low, width);
      }
      case ExprKind::Concat: {
        const BitVector high = evalBV(expr->kids[0], env);
        const BitVector low = evalBV(expr->kids[1], env);
        return BitVector::concat(high, low);
      }
      case ExprKind::BVCmp: {
        const BitVector a = evalBV(expr->kids[0], env);
        const BitVector b = evalBV(expr->kids[1], env);
        bool result = false;
        switch (static_cast<BVCmpOp>(expr->value)) {
          case BVCmpOp::Eq: result = a == b; break;
          case BVCmpOp::Ne: result = a != b; break;
          case BVCmpOp::Ult: result = a.ult(b); break;
          case BVCmpOp::Ule: result = a.ule(b); break;
          case BVCmpOp::Slt: result = a.slt(b); break;
          case BVCmpOp::Sle: result = a.sle(b); break;
        }
        return BitVector::fromUint(1, result ? 1 : 0);
      }
      case ExprKind::Select: {
        const BitVector cond = evalBV(expr->kids[0], env);
        return cond.isZero() ? evalBV(expr->kids[2], env)
                             : evalBV(expr->kids[1], env);
      }
      case ExprKind::Hole:
        panic("evaluating an unfilled synthesis hole");
      default:
        panic("evalBV on an Int-typed node");
    }
}

// ---- Rewriting ----------------------------------------------------------------

ExprPtr
rewrite(const ExprPtr &expr,
        const std::function<ExprPtr(const ExprPtr &)> &pred)
{
    if (ExprPtr replacement = pred(expr))
        return replacement;
    bool changed = false;
    std::vector<ExprPtr> kids;
    kids.reserve(expr->kids.size());
    for (const auto &kid : expr->kids) {
        ExprPtr rebuilt = rewrite(kid, pred);
        changed |= rebuilt.get() != kid.get();
        kids.push_back(std::move(rebuilt));
    }
    if (!changed)
        return expr;
    auto node = std::make_shared<Expr>(*expr);
    node->kids = std::move(kids);
    return node;
}

ExprPtr
simplify(const ExprPtr &expr)
{
    // Simplify children first.
    bool changed = false;
    std::vector<ExprPtr> kids;
    kids.reserve(expr->kids.size());
    for (const auto &kid : expr->kids) {
        ExprPtr s = simplify(kid);
        changed |= s.get() != kid.get();
        kids.push_back(std::move(s));
    }
    ExprPtr node = expr;
    if (changed) {
        auto fresh = std::make_shared<Expr>(*expr);
        fresh->kids = kids;
        node = fresh;
    }

    if (node->kind == ExprKind::IntBin) {
        const auto op = static_cast<IntBinOp>(node->value);
        const ExprPtr &a = node->kids[0];
        const ExprPtr &b = node->kids[1];
        const bool a_const = a->kind == ExprKind::IntConst;
        const bool b_const = b->kind == ExprKind::IntConst;
        if (a_const && b_const &&
            !((op == IntBinOp::Div || op == IntBinOp::Mod) && b->value == 0)) {
            return intConst(applyIntBin(op, a->value, b->value));
        }
        // Identity elements.
        if (op == IntBinOp::Add) {
            if (a_const && a->value == 0) return b;
            if (b_const && b->value == 0) return a;
        }
        if (op == IntBinOp::Sub && b_const && b->value == 0)
            return a;
        if (op == IntBinOp::Mul) {
            if (a_const && a->value == 1) return b;
            if (b_const && b->value == 1) return a;
            if ((a_const && a->value == 0) || (b_const && b->value == 0))
                return intConst(0);
        }
        if (op == IntBinOp::Div && b_const && b->value == 1)
            return a;
        if (op == IntBinOp::Mod && b_const && b->value == 1)
            return intConst(0);
        // Cancel symbolic terms: if the whole additive tree reduces to
        // a constant linear combination, fold it (handles slice widths
        // such as (i+7) - i + 1).
        if (op == IntBinOp::Add || op == IntBinOp::Sub) {
            LinComb lin;
            linearize(node, 1, lin);
            bool all_cancelled = lin.ok;
            for (const auto &term : lin.terms)
                all_cancelled &= term.second == 0;
            if (all_cancelled)
                return intConst(lin.constant);
        }
        // Deliberately no commutative reordering here: simplify() must
        // keep structure parallel across unrolled loop iterations so
        // that loop rerolling can anti-unify them. Operand-order
        // variants between *instructions* are merged by the similarity
        // engine's argument-permutation pass instead (paper §3.3).
    }
    return node;
}

void
collectNodes(const ExprPtr &expr, std::vector<ExprPtr> &out)
{
    out.push_back(expr);
    for (const auto &kid : expr->kids)
        collectNodes(kid, out);
}

const char *
intBinOpName(IntBinOp op)
{
    switch (op) {
      case IntBinOp::Add: return "add";
      case IntBinOp::Sub: return "sub";
      case IntBinOp::Mul: return "mul";
      case IntBinOp::Div: return "div";
      case IntBinOp::Mod: return "mod";
      case IntBinOp::Min: return "min";
      case IntBinOp::Max: return "max";
    }
    return "?";
}

const char *
bvBinOpName(BVBinOp op)
{
    switch (op) {
      case BVBinOp::Add: return "bvadd";
      case BVBinOp::Sub: return "bvsub";
      case BVBinOp::Mul: return "bvmul";
      case BVBinOp::UDiv: return "bvudiv";
      case BVBinOp::URem: return "bvurem";
      case BVBinOp::And: return "bvand";
      case BVBinOp::Or: return "bvor";
      case BVBinOp::Xor: return "bvxor";
      case BVBinOp::Shl: return "bvshl";
      case BVBinOp::LShr: return "bvlshr";
      case BVBinOp::AShr: return "bvashr";
      case BVBinOp::AddSatS: return "bvaddsat.s";
      case BVBinOp::AddSatU: return "bvaddsat.u";
      case BVBinOp::SubSatS: return "bvsubsat.s";
      case BVBinOp::SubSatU: return "bvsubsat.u";
      case BVBinOp::MinS: return "bvmin.s";
      case BVBinOp::MaxS: return "bvmax.s";
      case BVBinOp::MinU: return "bvmin.u";
      case BVBinOp::MaxU: return "bvmax.u";
      case BVBinOp::AvgU: return "bvavg.u";
      case BVBinOp::AvgS: return "bvavg.s";
    }
    return "?";
}

const char *
bvUnOpName(BVUnOp op)
{
    switch (op) {
      case BVUnOp::Not: return "bvnot";
      case BVUnOp::Neg: return "bvneg";
      case BVUnOp::AbsS: return "bvabs.s";
      case BVUnOp::Popcount: return "bvpopcount";
    }
    return "?";
}

const char *
bvCastOpName(BVCastOp op)
{
    switch (op) {
      case BVCastOp::SExt: return "sext";
      case BVCastOp::ZExt: return "zext";
      case BVCastOp::Trunc: return "trunc";
      case BVCastOp::SatNarrowS: return "satnarrow.s";
      case BVCastOp::SatNarrowU: return "satnarrow.u";
    }
    return "?";
}

const char *
bvCmpOpName(BVCmpOp op)
{
    switch (op) {
      case BVCmpOp::Eq: return "eq";
      case BVCmpOp::Ne: return "ne";
      case BVCmpOp::Ult: return "ult";
      case BVCmpOp::Ule: return "ule";
      case BVCmpOp::Slt: return "slt";
      case BVCmpOp::Sle: return "sle";
    }
    return "?";
}

} // namespace hydride
