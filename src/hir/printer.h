/**
 * @file
 * Human-readable printing of Hydride IR expressions and semantics,
 * used by examples, error messages and the generated documentation.
 */
#ifndef HYDRIDE_HIR_PRINTER_H
#define HYDRIDE_HIR_PRINTER_H

#include <string>

#include "hir/semantics.h"

namespace hydride {

/** Render one expression as a compact s-expression string. */
std::string printExpr(const ExprPtr &expr);

/** Render canonical semantics as a readable loop-nest description. */
std::string printSemantics(const CanonicalSemantics &sem);

/** Render a statement-form spec function. */
std::string printSpecFunction(const SpecFunction &spec);

} // namespace hydride

#endif // HYDRIDE_HIR_PRINTER_H
