/**
 * @file
 * Arbitrary-width bitvector values.
 *
 * BitVector is the single value type flowing through every executable
 * semantics in Hydride: the Hydride IR interpreter, the similarity
 * checking engine, the AutoLLVM IR interpreter used during synthesis,
 * and the target-instruction simulator. Widths range from 1 to 4096
 * bits (HVX uses 2048-bit register pairs; 4096 leaves headroom for
 * widened intermediates).
 *
 * Semantics notes:
 *  - Bit 0 is the least significant bit. Vector element 0 occupies the
 *    low-order bits, matching Intel/ARM/HVX pseudocode conventions.
 *  - Arithmetic wraps modulo 2^width unless the operation name says
 *    otherwise (addSatS, etc.).
 *  - Division by zero yields the all-ones vector for unsigned division
 *    (matching SMT-LIB bvudiv) and the dividend for remainder.
 */
#ifndef HYDRIDE_HIR_BITVECTOR_H
#define HYDRIDE_HIR_BITVECTOR_H

#include <cstdint>
#include <string>
#include <vector>

namespace hydride {

class Rng;

/**
 * A fixed-width two's-complement bitvector with value semantics.
 */
class BitVector
{
  public:
    /** Maximum supported width in bits. */
    static constexpr int kMaxWidth = 4096;

    /** An all-zero bitvector of `width` bits. */
    explicit BitVector(int width = 1);

    /** A bitvector of `width` bits holding `value` (zero-extended). */
    static BitVector fromUint(int width, uint64_t value);

    /** A bitvector of `width` bits holding `value` (sign-extended). */
    static BitVector fromInt(int width, int64_t value);

    /** All-ones bitvector of `width` bits. */
    static BitVector allOnes(int width);

    /** Uniformly random bitvector of `width` bits. */
    static BitVector random(int width, Rng &rng);

    int width() const { return width_; }

    /** Bit at position `index` (0 = LSB). */
    bool getBit(int index) const;

    /** Set bit at position `index`. */
    void setBit(int index, bool value);

    /** Low 64 bits as an unsigned integer. */
    uint64_t toUint64() const;

    /** Value as a signed 64-bit integer; width must be <= 64. */
    int64_t toInt64() const;

    /** True if every bit is zero. */
    bool isZero() const;

    /** True if the sign (top) bit is set. */
    bool signBit() const { return getBit(width_ - 1); }

    /** Lowercase hex rendering, most significant digit first. */
    std::string toHex() const;

    bool operator==(const BitVector &other) const;
    bool operator!=(const BitVector &other) const { return !(*this == other); }

    /** Deterministic hash of width and contents. */
    uint64_t hash() const;

    // ---- Width changes and slicing -------------------------------------

    /** Zero-extend (or no-op) to `new_width` >= width(). */
    BitVector zext(int new_width) const;

    /** Sign-extend (or no-op) to `new_width` >= width(). */
    BitVector sext(int new_width) const;

    /** Truncate to `new_width` <= width(). */
    BitVector trunc(int new_width) const;

    /** Extract `count` bits starting at bit `low`. */
    BitVector extract(int low, int count) const;

    /** Copy `value` into bits [low, low+value.width()). */
    void setSlice(int low, const BitVector &value);

    /** Concatenate: result = high : low (high in upper bits). */
    static BitVector concat(const BitVector &high, const BitVector &low);

    // ---- Bitwise --------------------------------------------------------

    BitVector bvand(const BitVector &other) const;
    BitVector bvor(const BitVector &other) const;
    BitVector bvxor(const BitVector &other) const;
    BitVector bvnot() const;

    /** Logical shift left by `amount` bits (>= 0; saturates to zero). */
    BitVector shl(int amount) const;

    /** Logical shift right. */
    BitVector lshr(int amount) const;

    /** Arithmetic shift right. */
    BitVector ashr(int amount) const;

    /** Rotate the whole bitvector right by `amount` bits. */
    BitVector rotr(int amount) const;

    /** Rotate the whole bitvector left by `amount` bits. */
    BitVector rotl(int amount) const;

    // ---- Arithmetic (modular) -------------------------------------------

    BitVector add(const BitVector &other) const;
    BitVector sub(const BitVector &other) const;
    BitVector neg() const;
    BitVector mul(const BitVector &other) const;

    /** Unsigned division; division by zero yields all-ones. */
    BitVector udiv(const BitVector &other) const;

    /** Unsigned remainder; division by zero yields the dividend. */
    BitVector urem(const BitVector &other) const;

    /** Signed division (round toward zero). */
    BitVector sdiv(const BitVector &other) const;

    /** Signed remainder (sign follows the dividend). */
    BitVector srem(const BitVector &other) const;

    // ---- Saturating arithmetic -------------------------------------------

    BitVector addSatS(const BitVector &other) const;
    BitVector addSatU(const BitVector &other) const;
    BitVector subSatS(const BitVector &other) const;
    BitVector subSatU(const BitVector &other) const;

    /**
     * Saturate this value (interpreted signed at full width) into
     * `to_width` bits with signed saturation.
     */
    BitVector satNarrowS(int to_width) const;

    /** Saturate (signed input) into `to_width` bits, unsigned range. */
    BitVector satNarrowU(int to_width) const;

    // ---- Comparisons ------------------------------------------------------

    bool ult(const BitVector &other) const;
    bool ule(const BitVector &other) const;
    bool slt(const BitVector &other) const;
    bool sle(const BitVector &other) const;

    // ---- Min/max/abs/average ----------------------------------------------

    BitVector minS(const BitVector &other) const;
    BitVector maxS(const BitVector &other) const;
    BitVector minU(const BitVector &other) const;
    BitVector maxU(const BitVector &other) const;

    /** |x| with wraparound on the most negative value. */
    BitVector absS() const;

    /** Unsigned rounding average: (a + b + 1) >> 1. */
    BitVector avgU(const BitVector &other) const;

    /** Signed rounding average. */
    BitVector avgS(const BitVector &other) const;

    /** Number of set bits, as a bitvector of the same width. */
    BitVector popcount() const;

  private:
    void clearUnusedBits();
    static int wordCount(int width) { return (width + 63) / 64; }

    int width_;
    std::vector<uint64_t> words_;
};

} // namespace hydride

#endif // HYDRIDE_HIR_BITVECTOR_H
