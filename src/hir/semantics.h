/**
 * @file
 * Instruction semantics in Hydride IR.
 *
 * Two representations exist, mirroring the paper's pipeline (§3.2-3.3):
 *
 *  1. `SpecFunction` — the *pre-canonical* statement form produced by
 *     the vendor pseudocode parsers: a list of FOR loops, bit-slice
 *     assignments into `dst`, and integer lets, mirroring how vendor
 *     manuals write pseudocode.
 *
 *  2. `CanonicalSemantics` — the canonical two-level loop-nest form
 *     produced by canonicalization (inlining, constant propagation,
 *     loop rerolling, artificial inner-loop insertion): the output
 *     vector is produced element-wise, outer loop over lanes, inner
 *     loop over elements in a lane. Every downstream component
 *     (similarity checking, AutoLLVM interpreter, synthesis) consumes
 *     this form only.
 *
 * Canonical element decomposition: output element index
 * `n = i * inner_count + j` with `i` the outer (lane) iterator and `j`
 * the inner iterator. The element value comes from one of `T`
 * structural templates; which template applies is selected by `j`
 * (mode ByInner, e.g. interleaves), by `i` (mode ByOuter, e.g.
 * concatenate-halves), or is the single template (mode Uniform, all
 * SIMD and strided-reduction instructions). Templates reference
 * `loopVar(0)` = i and `loopVar(1)` = j.
 */
#ifndef HYDRIDE_HIR_SEMANTICS_H
#define HYDRIDE_HIR_SEMANTICS_H

#include <string>
#include <vector>

#include "hir/expr.h"

namespace hydride {

/** A bitvector argument: display name plus width (Int expr over params). */
struct BVArgInfo
{
    std::string name;
    ExprPtr width;
};

/**
 * The structural role a numerical parameter plays, recorded by the
 * similarity engine's constant extraction. Roles keep semantically
 * different quantities apart even when their concrete values collide
 * (the paper's bitwidth-analysis concern, §3.3), and tell the
 * synthesizer which parameters scale with the number of lanes (§4.2):
 * Count and RegWidth scale, ElemWidth/Index/Value do not.
 */
enum class ParamRole {
    Count,     ///< Loop trip count (lanes, elements per lane).
    RegWidth,  ///< Bitvector argument width.
    ElemWidth, ///< Element width (output or extract/cast widths).
    Index,     ///< Bit-index arithmetic inside extract lows.
    Value,     ///< Literal constant operand (bvConst values, etc.).
};

/** An extracted numerical parameter with its original concrete value. */
struct ParamInfo
{
    std::string name;
    int64_t default_value;
    ParamRole role = ParamRole::Value;
};

/** How the structural template for an element is selected. */
enum class TemplateMode {
    Uniform, ///< One template; inner_count == 1; element index is `i`.
    ByInner, ///< templates.size() templates selected by `j`.
    ByOuter, ///< templates.size() templates selected by `i`.
};

/**
 * Canonicalized, optionally parameterized instruction semantics.
 *
 * Before constant extraction `params` is empty and every numerical
 * quantity is an IntConst; after extraction (similarity engine) the
 * IntConsts are Param nodes and `params` records their original
 * concrete values, giving the symbolic semantics Sigma(I, alpha).
 */
struct CanonicalSemantics
{
    std::string name;
    std::string isa;

    std::vector<BVArgInfo> bv_args;
    /** Integer immediate arguments (shift amounts, align offsets),
     *  referenced from templates as NamedVar leaves. */
    std::vector<std::string> int_args;
    std::vector<ParamInfo> params;
    /** Issue-to-result latency in cycles (from the vendor spec); used
     *  by the synthesis cost model and the performance simulator. */
    int latency = 1;

    TemplateMode mode = TemplateMode::Uniform;
    ExprPtr outer_count;        ///< Int expr: lanes (trip count of outer loop).
    ExprPtr inner_count;        ///< Int expr: elements per lane.
    ExprPtr elem_width;         ///< Int expr: bits per output element.
    std::vector<ExprPtr> templates;

    /** Default parameter values, in order. */
    std::vector<int64_t> defaultParamValues() const;

    /** Output width in bits under the given parameter values. */
    int outputWidth(const std::vector<int64_t> &param_values) const;

    /** Width in bits of bitvector argument `index`. */
    int argWidth(int index, const std::vector<int64_t> &param_values) const;

    /**
     * The structural template selecting output element (i, j) under
     * `mode`. Shared by the concrete interpreter and the symbolic
     * evaluator (analysis/symbolic/sym_eval.h) so the two loop nests
     * cannot drift apart.
     */
    const ExprPtr &templateFor(int64_t i, int64_t j) const;

    /**
     * Execute the canonical semantics: evaluate every output element
     * and assemble the result vector. `int_arg_values` supplies the
     * integer immediates, in `int_args` order.
     */
    BitVector evaluate(const std::vector<BitVector> &args,
                       const std::vector<int64_t> &param_values,
                       const std::vector<int64_t> &int_arg_values = {}) const;

    /** Structural equality of the parameterized shape (ignores names,
     *  ISA, and parameter default values; compares structure only). */
    static bool sameShape(const CanonicalSemantics &a,
                          const CanonicalSemantics &b);

    /** Hash consistent with sameShape(). */
    uint64_t shapeHash() const;

    /** Multiset of bitvector operators appearing in the templates
     *  (used by synthesis grammar pruning, §4.3). */
    std::vector<BVBinOp> bvBinOps() const;
};

// ---- Pre-canonical statement IR -------------------------------------------

struct Stmt;
using StmtPtr = std::shared_ptr<const Stmt>;

/** Statement kinds emitted by the pseudocode parsers. */
enum class StmtKind {
    For,         ///< FOR var := lo to hi (inclusive) { body }.
    SliceAssign, ///< dst[low + width - 1 : low] := value.
    LetInt,      ///< var := integer expression.
};

/** One pseudocode statement. */
struct Stmt
{
    StmtKind kind;
    std::string var;          ///< For / LetInt variable name.
    ExprPtr lo;               ///< For lower bound; LetInt bound value.
    ExprPtr hi;               ///< For upper bound (inclusive).
    std::vector<StmtPtr> body;
    ExprPtr low;              ///< SliceAssign low bit index.
    ExprPtr width;            ///< SliceAssign width in bits.
    ExprPtr value;            ///< SliceAssign value (BV-typed).
};

StmtPtr stmtFor(std::string var, ExprPtr lo, ExprPtr hi,
                std::vector<StmtPtr> body);
StmtPtr stmtSliceAssign(ExprPtr low, ExprPtr width, ExprPtr value);
StmtPtr stmtLetInt(std::string var, ExprPtr value);

/**
 * A parsed vendor pseudocode function, before canonicalization.
 * Argument widths and the output width are concrete here.
 */
struct SpecFunction
{
    std::string name;
    std::string isa;
    std::vector<BVArgInfo> bv_args;
    /** Integer immediate arguments, referenced as NamedVar. */
    std::vector<std::string> int_args;
    int out_width = 0;
    /** Issue-to-result latency in cycles (from the vendor spec). */
    int latency = 1;
    std::vector<StmtPtr> body;

    /** Directly interpret the statement form (reference executor used
     *  by fuzzing and canonicalizer validation). */
    BitVector evaluate(const std::vector<BitVector> &args,
                       const std::vector<int64_t> &int_arg_values = {}) const;
};

} // namespace hydride

#endif // HYDRIDE_HIR_SEMANTICS_H
