#include "hir/canonicalize.h"

#include "support/error.h"
#include "support/rng.h"
#include "support/strings.h"

#include <algorithm>
#include <map>

namespace hydride {

namespace {

/** Substitute named variables by expressions (symbolic let inlining). */
ExprPtr
substituteNamed(const ExprPtr &expr,
                const std::map<std::string, ExprPtr> &bindings)
{
    return rewrite(expr, [&](const ExprPtr &node) -> ExprPtr {
        if (node->kind == ExprKind::NamedVar) {
            auto it = bindings.find(node->name);
            if (it != bindings.end())
                return it->second;
        }
        return nullptr;
    });
}

/**
 * Inline LetInt statements symbolically, removing them from the
 * statement list. Loop bounds and slice expressions are substituted
 * and constant-folded.
 */
std::vector<StmtPtr>
inlineLets(const std::vector<StmtPtr> &body,
           std::map<std::string, ExprPtr> bindings)
{
    std::vector<StmtPtr> out;
    for (const auto &stmt : body) {
        switch (stmt->kind) {
          case StmtKind::LetInt:
            bindings[stmt->var] =
                simplify(substituteNamed(stmt->lo, bindings));
            break;
          case StmtKind::For: {
            // The loop variable shadows any outer binding.
            auto inner = bindings;
            inner.erase(stmt->var);
            out.push_back(stmtFor(
                stmt->var,
                simplify(substituteNamed(stmt->lo, bindings)),
                simplify(substituteNamed(stmt->hi, bindings)),
                inlineLets(stmt->body, inner)));
            break;
          }
          case StmtKind::SliceAssign:
            out.push_back(stmtSliceAssign(
                simplify(substituteNamed(stmt->low, bindings)),
                simplify(substituteNamed(stmt->width, bindings)),
                simplify(substituteNamed(stmt->value, bindings))));
            break;
        }
    }
    return out;
}

/** Concrete trip count of a For whose bounds folded to constants. */
bool
tripCount(const Stmt &loop, int64_t &count)
{
    if (loop.lo->kind != ExprKind::IntConst ||
        loop.hi->kind != ExprKind::IntConst || loop.lo->value != 0) {
        return false;
    }
    count = loop.hi->value + 1;
    return count >= 1;
}

/** Rename a spec loop variable to a canonical loop iterator. */
ExprPtr
bindLoopVar(const ExprPtr &expr, const std::string &name, int level)
{
    std::map<std::string, ExprPtr> bindings;
    bindings[name] = loopVar(level);
    return simplify(substituteNamed(expr, bindings));
}

/**
 * Check that `low(iter values)` enumerates `expected(slot)` for every
 * iteration of a canonical nest, by direct integer evaluation.
 */
bool
lowIndexMatches(const ExprPtr &low, int64_t outer, int64_t inner,
                int64_t elem_width, int64_t inner_offset,
                int64_t inner_stride)
{
    for (int64_t i = 0; i < outer; ++i) {
        for (int64_t j = 0; j < inner; ++j) {
            EvalEnv env;
            env.loop_i = i;
            env.loop_j = j;
            const int64_t slot = i * inner * inner_stride +
                                 j * inner_stride + inner_offset;
            if (evalInt(low, env) != slot * elem_width)
                return false;
        }
    }
    return true;
}

/** A For loop whose body is exactly `count` slice assignments. */
bool
isFlatAssignLoop(const Stmt &loop, size_t count)
{
    if (loop.kind != StmtKind::For || loop.body.size() != count)
        return false;
    for (const auto &stmt : loop.body)
        if (stmt->kind != StmtKind::SliceAssign)
            return false;
    return true;
}

/** True if the expression contains a NamedVar not in `allowed`. */
bool
hasFreeNamed(const ExprPtr &expr, const std::vector<std::string> &allowed)
{
    std::vector<ExprPtr> nodes;
    collectNodes(expr, nodes);
    for (const auto &node : nodes) {
        if (node->kind == ExprKind::NamedVar &&
            std::find(allowed.begin(), allowed.end(), node->name) ==
                allowed.end()) {
            return true;
        }
    }
    return false;
}

/**
 * Flatten perfect two-level loop nests into one loop over the combined
 * iteration space, binding the original iterators as div/mod of the
 * combined counter. Applied bottom-up until fixpoint so that deeper
 * nests also collapse. This lets the single-loop structural shapes
 * cover per-128-bit-lane instructions while keeping indices symbolic.
 */
std::vector<StmtPtr>
flattenNests(const std::vector<StmtPtr> &body)
{
    std::vector<StmtPtr> out;
    for (const auto &stmt : body) {
        if (stmt->kind != StmtKind::For) {
            out.push_back(stmt);
            continue;
        }
        StmtPtr loop = stmtFor(stmt->var, stmt->lo, stmt->hi,
                               flattenNests(stmt->body));
        // Collapse For(x){ For(y){ assigns } } into a single loop.
        while (true) {
            const Stmt &outer = *loop;
            int64_t outer_count = 0;
            if (!(outer.body.size() == 1 &&
                  outer.body[0]->kind == StmtKind::For &&
                  tripCount(outer, outer_count))) {
                break;
            }
            const Stmt &inner = *outer.body[0];
            int64_t inner_count = 0;
            if (!tripCount(inner, inner_count) ||
                !isFlatAssignLoop(inner, inner.body.size())) {
                break;
            }
            const std::string combined = "__flat_" + outer.var;
            std::map<std::string, ExprPtr> bindings;
            bindings[outer.var] =
                divI(namedVar(combined), intConst(inner_count));
            bindings[inner.var] =
                modI(namedVar(combined), intConst(inner_count));
            std::vector<StmtPtr> assigns;
            for (const auto &assign : inner.body) {
                assigns.push_back(stmtSliceAssign(
                    simplify(substituteNamed(assign->low, bindings)),
                    simplify(substituteNamed(assign->width, bindings)),
                    simplify(substituteNamed(assign->value, bindings))));
            }
            loop = stmtFor(combined, intConst(0),
                           intConst(outer_count * inner_count - 1),
                           std::move(assigns));
        }
        out.push_back(std::move(loop));
    }
    return out;
}

struct StructuralOutcome
{
    bool matched = false;
    CanonicalSemantics sem;
};

/**
 * Strategy 1: map the spec's own loop structure onto the canonical
 * nest. Handles the loop shapes vendor pseudocode actually uses;
 * everything else falls through to unroll-and-reroll.
 */
StructuralOutcome
tryStructural(const SpecFunction &spec, const std::vector<StmtPtr> &body)
{
    StructuralOutcome outcome;
    CanonicalSemantics &sem = outcome.sem;
    sem.name = spec.name;
    sem.isa = spec.isa;
    sem.bv_args = spec.bv_args;
    sem.int_args = spec.int_args;
    sem.latency = spec.latency;

    // Shape A: one loop, one assignment -> pure SIMD / strided op.
    // The canonical form gets an artificial inner loop of one
    // iteration (paper §3.3).
    if (body.size() == 1 && isFlatAssignLoop(*body[0], 1)) {
        const Stmt &loop = *body[0];
        const Stmt &assign = *loop.body[0];
        int64_t count = 0;
        if (!tripCount(loop, count) ||
            assign.width->kind != ExprKind::IntConst) {
            return outcome;
        }
        const int64_t width = assign.width->value;
        ExprPtr low = bindLoopVar(assign.low, loop.var, 0);
        if (hasFreeNamed(low, {}) || !lowIndexMatches(low, count, 1, width, 0, 1))
            return outcome;
        sem.mode = TemplateMode::Uniform;
        sem.outer_count = intConst(count);
        sem.inner_count = intConst(1);
        sem.elem_width = intConst(width);
        sem.templates = {bindLoopVar(assign.value, loop.var, 0)};
        outcome.matched = true;
        return outcome;
    }

    // Shape B: one loop, k >= 2 assignments -> ByInner with k
    // templates (e.g. interleave pseudocode writing dst[2j], dst[2j+1]).
    if (body.size() == 1 && body[0]->kind == StmtKind::For &&
        isFlatAssignLoop(*body[0], body[0]->body.size()) &&
        body[0]->body.size() >= 2) {
        const Stmt &loop = *body[0];
        const size_t k = loop.body.size();
        int64_t count = 0;
        if (!tripCount(loop, count))
            return outcome;
        int64_t width = -1;
        std::vector<ExprPtr> templates;
        for (size_t idx = 0; idx < k; ++idx) {
            const Stmt &assign = *loop.body[idx];
            if (assign.width->kind != ExprKind::IntConst)
                return outcome;
            if (width < 0)
                width = assign.width->value;
            else if (width != assign.width->value)
                return outcome;
            ExprPtr low = bindLoopVar(assign.low, loop.var, 0);
            if (hasFreeNamed(low, {}) ||
                !lowIndexMatches(low, count, 1, width,
                                 static_cast<int64_t>(idx),
                                 static_cast<int64_t>(k))) {
                return outcome;
            }
            templates.push_back(bindLoopVar(assign.value, loop.var, 0));
        }
        sem.mode = TemplateMode::ByInner;
        sem.outer_count = intConst(count);
        sem.inner_count = intConst(static_cast<int64_t>(k));
        sem.elem_width = intConst(width);
        sem.templates = std::move(templates);
        outcome.matched = true;
        return outcome;
    }

    // Shape C: a sequence of T >= 2 single-assignment loops covering
    // consecutive output blocks -> ByOuter with T templates (e.g.
    // concatenate-halves / combine instructions).
    if (body.size() >= 2) {
        for (const auto &stmt : body)
            if (!isFlatAssignLoop(*stmt, 1))
                return outcome;
        const size_t blocks = body.size();
        int64_t inner_count = -1;
        int64_t width = -1;
        std::vector<ExprPtr> templates;
        for (size_t t = 0; t < blocks; ++t) {
            const Stmt &loop = *body[t];
            const Stmt &assign = *loop.body[0];
            int64_t count = 0;
            if (!tripCount(loop, count) ||
                assign.width->kind != ExprKind::IntConst) {
                return outcome;
            }
            if (inner_count < 0)
                inner_count = count;
            else if (inner_count != count)
                return outcome;
            if (width < 0)
                width = assign.width->value;
            else if (width != assign.width->value)
                return outcome;
            ExprPtr low = bindLoopVar(assign.low, loop.var, 1);
            if (hasFreeNamed(low, {}))
                return outcome;
            // Block t writes elements [t*inner, (t+1)*inner).
            bool match = true;
            for (int64_t j = 0; j < count && match; ++j) {
                EvalEnv env;
                env.loop_j = j;
                match = evalInt(low, env) ==
                        (static_cast<int64_t>(t) * count + j) * width;
            }
            if (!match)
                return outcome;
            templates.push_back(bindLoopVar(assign.value, loop.var, 1));
        }
        sem.mode = TemplateMode::ByOuter;
        sem.outer_count = intConst(static_cast<int64_t>(blocks));
        sem.inner_count = intConst(inner_count);
        sem.elem_width = intConst(width);
        sem.templates = std::move(templates);
        outcome.matched = true;
        return outcome;
    }

    return outcome;
}

// ---- Strategy 2: unroll and reroll ----------------------------------------

struct UnrolledSlice
{
    int64_t low;
    int64_t width;
    ExprPtr value;
};

/** Substitute current integer bindings as IntConst leaves and fold. */
ExprPtr
concretizeInts(const ExprPtr &expr,
               const std::unordered_map<std::string, int64_t> &env)
{
    ExprPtr bound = rewrite(expr, [&](const ExprPtr &node) -> ExprPtr {
        if (node->kind == ExprKind::NamedVar) {
            auto it = env.find(node->name);
            if (it != env.end())
                return intConst(it->second);
        }
        return nullptr;
    });
    return simplify(bound);
}

bool
unrollStmts(const std::vector<StmtPtr> &body,
            std::unordered_map<std::string, int64_t> &env,
            std::vector<UnrolledSlice> &slices)
{
    for (const auto &stmt : body) {
        switch (stmt->kind) {
          case StmtKind::LetInt: {
            EvalEnv eval_env;
            eval_env.named = env;
            env[stmt->var] = evalInt(stmt->lo, eval_env);
            break;
          }
          case StmtKind::For: {
            EvalEnv eval_env;
            eval_env.named = env;
            const int64_t lo = evalInt(stmt->lo, eval_env);
            const int64_t hi = evalInt(stmt->hi, eval_env);
            for (int64_t it = lo; it <= hi; ++it) {
                env[stmt->var] = it;
                if (!unrollStmts(stmt->body, env, slices))
                    return false;
            }
            env.erase(stmt->var);
            break;
          }
          case StmtKind::SliceAssign: {
            EvalEnv eval_env;
            eval_env.named = env;
            UnrolledSlice slice;
            slice.low = evalInt(stmt->low, eval_env);
            slice.width = evalInt(stmt->width, eval_env);
            slice.value = concretizeInts(stmt->value, env);
            slices.push_back(std::move(slice));
            break;
          }
        }
    }
    return true;
}

} // namespace

ExprPtr
antiUnifyAffine(const std::vector<ExprPtr> &instances, int var_level)
{
    HYD_ASSERT(!instances.empty(), "antiUnifyAffine needs instances");
    const ExprPtr &first = instances[0];
    if (instances.size() == 1)
        return first;

    // All instances must agree on the node shape.
    for (const auto &inst : instances) {
        if (inst->kind != first->kind || inst->name != first->name ||
            inst->kids.size() != first->kids.size()) {
            return nullptr;
        }
        if (inst->kind != ExprKind::IntConst && inst->value != first->value)
            return nullptr;
    }

    if (first->kind == ExprKind::IntConst) {
        bool all_same = true;
        for (const auto &inst : instances)
            all_same &= inst->value == first->value;
        if (all_same)
            return first;
        // Fit value(t) = base + stride * t over instance index t.
        const int64_t base = instances[0]->value;
        const int64_t stride = instances[1]->value - base;
        for (size_t t = 0; t < instances.size(); ++t) {
            if (instances[t]->value != base + stride * static_cast<int64_t>(t))
                return nullptr;
        }
        return simplify(addI(mulI(intConst(stride), loopVar(var_level)),
                             intConst(base)));
    }

    // Recurse over children.
    std::vector<ExprPtr> kids;
    kids.reserve(first->kids.size());
    for (size_t k = 0; k < first->kids.size(); ++k) {
        std::vector<ExprPtr> column;
        column.reserve(instances.size());
        for (const auto &inst : instances)
            column.push_back(inst->kids[k]);
        ExprPtr unified = antiUnifyAffine(column, var_level);
        if (!unified)
            return nullptr;
        kids.push_back(std::move(unified));
    }
    auto node = std::make_shared<Expr>(*first);
    node->kids = std::move(kids);
    return node;
}

namespace {

bool
tryReroll(const SpecFunction &spec, const std::vector<StmtPtr> &body,
          CanonicalSemantics &sem)
{
    std::vector<UnrolledSlice> slices;
    std::unordered_map<std::string, int64_t> env;
    if (!unrollStmts(body, env, slices) || slices.empty())
        return false;

    std::sort(slices.begin(), slices.end(),
              [](const UnrolledSlice &a, const UnrolledSlice &b) {
                  return a.low < b.low;
              });
    const int64_t width = slices[0].width;
    for (size_t n = 0; n < slices.size(); ++n) {
        if (slices[n].width != width ||
            slices[n].low != static_cast<int64_t>(n) * width) {
            return false;
        }
    }
    const int64_t total = static_cast<int64_t>(slices.size());
    std::vector<ExprPtr> elems;
    elems.reserve(slices.size());
    for (auto &slice : slices)
        elems.push_back(std::move(slice.value));

    sem.name = spec.name;
    sem.isa = spec.isa;
    sem.bv_args = spec.bv_args;
    sem.int_args = spec.int_args;
    sem.latency = spec.latency;
    sem.elem_width = intConst(width);

    // Uniform: one template affine in the flat element index.
    if (ExprPtr tmpl = antiUnifyAffine(elems, 0)) {
        sem.mode = TemplateMode::Uniform;
        sem.outer_count = intConst(total);
        sem.inner_count = intConst(1);
        sem.templates = {std::move(tmpl)};
        return true;
    }

    // ByInner: group by n % T, anti-unify across lanes.
    for (int64_t t : {2, 4, 8, 16, 32}) {
        if (t >= total || total % t != 0)
            continue;
        std::vector<ExprPtr> templates;
        bool ok = true;
        for (int64_t j = 0; j < t && ok; ++j) {
            std::vector<ExprPtr> group;
            for (int64_t i = 0; i * t + j < total; ++i)
                group.push_back(elems[i * t + j]);
            ExprPtr tmpl = antiUnifyAffine(group, 0);
            ok = tmpl != nullptr;
            if (ok)
                templates.push_back(std::move(tmpl));
        }
        if (ok) {
            sem.mode = TemplateMode::ByInner;
            sem.outer_count = intConst(total / t);
            sem.inner_count = intConst(t);
            sem.templates = std::move(templates);
            return true;
        }
    }

    // ByOuter: split into T consecutive blocks, anti-unify inside each.
    for (int64_t t : {2, 4}) {
        if (t >= total || total % t != 0)
            continue;
        const int64_t block = total / t;
        std::vector<ExprPtr> templates;
        bool ok = true;
        for (int64_t i = 0; i < t && ok; ++i) {
            std::vector<ExprPtr> group(elems.begin() + i * block,
                                       elems.begin() + (i + 1) * block);
            ExprPtr tmpl = antiUnifyAffine(group, 1);
            ok = tmpl != nullptr;
            if (ok)
                templates.push_back(std::move(tmpl));
        }
        if (ok) {
            sem.mode = TemplateMode::ByOuter;
            sem.outer_count = intConst(t);
            sem.inner_count = intConst(block);
            sem.templates = std::move(templates);
            return true;
        }
    }
    return false;
}

/** Differentially validate the canonical form against the statement
 *  interpreter on deterministic pseudo-random inputs. */
bool
validateCanonical(const SpecFunction &spec, const CanonicalSemantics &sem,
                  std::string &error)
{
    Rng rng(0xC0FFEEull ^ std::hash<std::string>{}(spec.name));
    const std::vector<int64_t> no_params;
    for (int trial = 0; trial < 3; ++trial) {
        std::vector<BitVector> args;
        for (const auto &arg : spec.bv_args) {
            EvalEnv env;
            const int width = static_cast<int>(evalInt(arg.width, env));
            args.push_back(BitVector::random(width, rng));
        }
        // Immediate validity ranges are instruction-specific (an
        // align amount must stay below the element count, a shift
        // below the element width); 1 is valid for every immediate
        // operand in the three manuals, so validation pins it.
        std::vector<int64_t> int_values(spec.int_args.size(), 1);
        const BitVector expected = spec.evaluate(args, int_values);
        const BitVector actual = sem.evaluate(args, no_params, int_values);
        if (expected != actual) {
            error = "canonical form diverges from statement form";
            return false;
        }
    }
    return true;
}

} // namespace

CanonicalizeResult
canonicalize(const SpecFunction &spec)
{
    CanonicalizeResult result;
    std::vector<StmtPtr> body = inlineLets(spec.body, {});

    StructuralOutcome structural = tryStructural(spec, body);
    if (!structural.matched) {
        // Perfect nests collapse into one loop with div/mod iterators,
        // after which the single-loop shapes usually apply.
        std::vector<StmtPtr> flattened = flattenNests(body);
        structural = tryStructural(spec, flattened);
    }
    if (structural.matched) {
        result.sem = std::move(structural.sem);
        result.strategy = "structural";
    } else {
        CanonicalSemantics sem;
        if (!spec.int_args.empty()) {
            // The reroll fallback fully evaluates slice positions,
            // which is impossible with unbound immediates; the spec
            // families that need rerolling never carry immediates.
            result.error = "cannot reroll a spec with integer immediates";
            return result;
        }
        if (!tryReroll(spec, body, sem)) {
            result.error = "no canonicalization strategy applies";
            return result;
        }
        result.sem = std::move(sem);
        result.strategy = "reroll";
    }

    if (!validateCanonical(spec, result.sem, result.error))
        return result;
    result.ok = true;
    return result;
}

} // namespace hydride
