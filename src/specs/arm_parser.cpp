#include "specs/arm_parser.h"

#include "specs/parser_common.h"
#include "support/error.h"

namespace hydride {

namespace {

class ArmParser : public ExprParserBase
{
  public:
    explicit ArmParser(const InstDef &inst)
        : ExprParserBase(lexPseudocode(inst.pseudocode), "arm:" + inst.name)
    {
    }

    SpecFunction
    parse()
    {
        cur_.expect("INSTRUCTION");
        fn_.isa = "arm";
        fn_.name = cur_.expectIdent();
        cur_.expect("(");
        if (!cur_.lookingAt(")")) {
            do {
                const std::string arg_name = cur_.expectIdent();
                cur_.expect(":");
                if (cur_.accept("imm")) {
                    fn_.int_args.push_back(arg_name);
                    scope_.int_vars[arg_name] = true;
                } else {
                    cur_.expect("bits");
                    cur_.expect("(");
                    const int width = static_cast<int>(cur_.expectNumber());
                    cur_.expect(")");
                    ParseScope::BVSym sym;
                    sym.index = static_cast<int>(fn_.bv_args.size());
                    sym.width = width;
                    scope_.bv_args[arg_name] = sym;
                    fn_.bv_args.push_back({arg_name, intConst(width)});
                }
            } while (cur_.accept(","));
        }
        cur_.expect(")");
        cur_.expect("=>");
        cur_.expect("bits");
        cur_.expect("(");
        fn_.out_width = static_cast<int>(cur_.expectNumber());
        cur_.expect(")");
        cur_.expect("LATENCY");
        fn_.latency = static_cast<int>(cur_.expectNumber());
        fn_.body = parseStmts({"ENDINSTRUCTION"});
        cur_.expect("ENDINSTRUCTION");
        return std::move(fn_);
    }

  private:
    std::vector<StmtPtr>
    parseStmts(const std::vector<std::string> &terminators)
    {
        std::vector<StmtPtr> stmts;
        while (true) {
            for (const auto &term : terminators)
                if (cur_.lookingAt(term))
                    return stmts;
            stmts.push_back(parseStmt());
        }
    }

    StmtPtr
    parseStmt()
    {
        if (cur_.accept("for")) {
            const std::string var = cur_.expectIdent();
            cur_.expect("=");
            TypedExpr lo = parseLocatedExpr();
            cur_.expect("to");
            TypedExpr hi = parseLocatedExpr();
            cur_.expect("do");
            requireInt(lo, "for lower bound");
            requireInt(hi, "for upper bound");
            scope_.int_vars[var] = true;
            std::vector<StmtPtr> body = parseStmts({"endfor"});
            cur_.expect("endfor");
            scope_.int_vars.erase(var);
            return stmtFor(var, lo.expr, hi.expr, std::move(body));
        }
        if (cur_.lookingAt("Elem")) {
            cur_.take();
            cur_.expect("[");
            cur_.expect("dst");
            cur_.expect(",");
            TypedExpr idx = parseLocatedExpr();
            cur_.expect(",");
            TypedExpr width_e = parseLocatedExpr();
            cur_.expect("]");
            cur_.expect("=");
            TypedExpr value = parseLocatedExpr();
            cur_.expect(";");
            requireInt(idx, "element index");
            const int width = constOf(width_e.expr, "element width");
            if (!value.is_bv)
                value = coerceLiteral(value, width);
            if (value.width != width)
                cur_.fail("element width mismatch in assignment to dst");
            return stmtSliceAssign(mulI(idx.expr, intConst(width)),
                                   intConst(width), value.expr);
        }
        if (cur_.lookingAt("dst")) {
            // Raw whole/partial register assignment: dst = expr; or
            // Bits-style positions are not needed on the LHS, vendor
            // text uses `dst = expr;` for whole-register ops.
            cur_.take();
            cur_.expect("=");
            TypedExpr value = parseLocatedExpr();
            cur_.expect(";");
            if (!value.is_bv)
                cur_.fail("whole-register assignment must be a bitvector");
            return stmtSliceAssign(intConst(0), intConst(value.width),
                                   value.expr);
        }
        const std::string var = cur_.expectIdent();
        cur_.expect("=");
        TypedExpr value = parseLocatedExpr();
        cur_.expect(";");
        requireInt(value, "let binding");
        scope_.int_vars[var] = true;
        return stmtLetInt(var, value.expr);
    }

    TypedExpr
    parsePrimary() override
    {
        if (cur_.peek().kind == TokKind::Number) {
            TypedExpr out;
            out.expr = intConst(cur_.take().number);
            return out;
        }
        if (cur_.accept("(")) {
            TypedExpr inner = parseExpr();
            cur_.expect(")");
            return inner;
        }
        if (cur_.lookingAt("Elem")) {
            cur_.take();
            cur_.expect("[");
            TypedExpr base = parseExpr();
            if (!base.is_bv)
                cur_.fail("Elem base must be a bitvector");
            cur_.expect(",");
            TypedExpr idx = parseExpr();
            requireInt(idx, "element index");
            cur_.expect(",");
            TypedExpr width_e = parseExpr();
            cur_.expect("]");
            const int width = constOf(width_e.expr, "element width");
            TypedExpr out;
            out.is_bv = true;
            out.width = width;
            out.expr = extract(base.expr, mulI(idx.expr, intConst(width)),
                               intConst(width));
            return out;
        }
        const std::string name = cur_.expectIdent();
        if (cur_.lookingAt("(") && !scope_.isBV(name) && !scope_.isInt(name))
            return parseCall(name);
        if (scope_.isBV(name)) {
            const auto &sym = scope_.bv_args.at(name);
            TypedExpr out;
            out.is_bv = true;
            out.width = sym.width;
            out.expr = argBV(sym.index);
            return out;
        }
        if (scope_.isInt(name)) {
            TypedExpr out;
            out.expr = namedVar(name);
            return out;
        }
        cur_.fail("unknown identifier `" + name + "`");
    }

    TypedExpr
    parseCall(const std::string &name)
    {
        cur_.expect("(");
        std::vector<TypedExpr> args;
        if (!cur_.lookingAt(")")) {
            do {
                args.push_back(parseExpr());
            } while (cur_.accept(","));
        }
        cur_.expect(")");

        if (name == "SExt")
            return callCast(BVCastOp::SExt, args, name);
        if (name == "ZExt")
            return callCast(BVCastOp::ZExt, args, name);
        if (name == "Trunc")
            return callCast(BVCastOp::Trunc, args, name);
        if (name == "SSat")
            return callCast(BVCastOp::SatNarrowS, args, name);
        if (name == "USat")
            return callCast(BVCastOp::SatNarrowU, args, name);
        if (name == "SMin")
            return callBin(BVBinOp::MinS, args, name);
        if (name == "SMax")
            return callBin(BVBinOp::MaxS, args, name);
        if (name == "UMin")
            return callBin(BVBinOp::MinU, args, name);
        if (name == "UMax")
            return callBin(BVBinOp::MaxU, args, name);
        if (name == "SAvg")
            return callBin(BVBinOp::AvgS, args, name);
        if (name == "UAvg")
            return callBin(BVBinOp::AvgU, args, name);
        if (name == "Abs")
            return callUn(BVUnOp::AbsS, args, name);
        if (name == "PopCount")
            return callUn(BVUnOp::Popcount, args, name);
        if (name == "UGT" || name == "UGE") {
            if (args.size() != 2)
                cur_.fail(name + " expects 2 arguments");
            // UGT(a, b) == b <u a.
            return makeCompare(name == "UGT" ? "<" : "<=", args[1], args[0],
                               /*unsigned_cmp=*/true);
        }
        if (name == "Bits") {
            if (args.size() != 3)
                cur_.fail("Bits expects 3 arguments");
            if (!args[0].is_bv)
                cur_.fail("Bits base must be a bitvector");
            requireInt(args[1], "Bits high index");
            requireInt(args[2], "Bits low index");
            TypedExpr out;
            out.is_bv = true;
            out.width = sliceWidth(args[1].expr, args[2].expr);
            out.expr = extract(args[0].expr, args[2].expr,
                               intConst(out.width));
            return out;
        }
        if (name == "Ones" || name == "Zeros") {
            if (args.size() != 1)
                cur_.fail(name + " expects 1 argument");
            requireInt(args[0], name + " width");
            const int width = constOf(args[0].expr, name + " width");
            TypedExpr out;
            out.is_bv = true;
            out.width = width;
            out.expr = bvConst(intConst(width),
                               intConst(name == "Ones" ? -1 : 0));
            return out;
        }
        cur_.fail("unknown function `" + name + "`");
    }

    SpecFunction fn_;
};

} // namespace

SpecFunction
parseArmInst(const InstDef &inst)
{
    return ArmParser(inst).parse();
}

} // namespace hydride
