#include "specs/isa.h"

namespace hydride {

std::string
IsaSpec::renderManual() const
{
    std::string out;
    out += "// ===== " + isa + " instruction set pseudocode manual =====\n";
    for (const auto &inst : insts) {
        out += "\n";
        out += inst.pseudocode;
    }
    return out;
}

} // namespace hydride
