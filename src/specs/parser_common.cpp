#include "specs/parser_common.h"

#include "observability/metrics.h"
#include "support/error.h"
#include "support/strings.h"

#include <cctype>

namespace hydride {

std::vector<Token>
lexPseudocode(const std::string &text)
{
    std::vector<Token> tokens;
    int line = 1;
    size_t i = 0;
    const size_t n = text.size();
    while (i < n) {
        const char c = text[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
            while (i < n && text[i] != '\n')
                ++i;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            size_t start = i;
            while (i < n && std::isdigit(static_cast<unsigned char>(text[i])))
                ++i;
            Token tok;
            tok.kind = TokKind::Number;
            tok.text = text.substr(start, i - start);
            tok.number = std::stoll(tok.text);
            tok.line = line;
            tokens.push_back(std::move(tok));
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            size_t start = i;
            while (i < n && (std::isalnum(static_cast<unsigned char>(text[i])) ||
                             text[i] == '_')) {
                ++i;
            }
            Token tok;
            tok.kind = TokKind::Ident;
            tok.text = text.substr(start, i - start);
            tok.line = line;
            tokens.push_back(std::move(tok));
            continue;
        }
        // Multi-character punctuation, longest-match first.
        static const char *kMulti[] = {"<<", ">>>", ">>", ":=", "==", "!=",
                                       "<=", ">=", "->", "=>", "&&", "||",
                                       "+:"};
        std::string punct(1, c);
        for (const char *m : kMulti) {
            const size_t len = std::string(m).size();
            if (text.compare(i, len, m) == 0 &&
                punct.size() < len) {
                punct = m;
            }
        }
        Token tok;
        tok.kind = TokKind::Punct;
        tok.text = punct;
        tok.line = line;
        tokens.push_back(std::move(tok));
        i += punct.size();
    }
    Token end;
    end.kind = TokKind::End;
    end.line = line;
    tokens.push_back(std::move(end));
    return tokens;
}

TokenCursor::TokenCursor(std::vector<Token> tokens, std::string source_name)
    : tokens_(std::move(tokens)), source_name_(std::move(source_name))
{
    HYD_ASSERT(!tokens_.empty() && tokens_.back().kind == TokKind::End,
               "token stream must end with End");
}

const Token &
TokenCursor::peek(int ahead) const
{
    const size_t index = std::min(pos_ + static_cast<size_t>(ahead),
                                  tokens_.size() - 1);
    return tokens_[index];
}

Token
TokenCursor::take()
{
    Token tok = tokens_[pos_];
    if (pos_ + 1 < tokens_.size())
        ++pos_;
    return tok;
}

Token
TokenCursor::expect(const std::string &text)
{
    if (peek().text != text)
        fail("expected `" + text + "` but found `" + peek().text + "`");
    return take();
}

std::string
TokenCursor::expectIdent()
{
    if (peek().kind != TokKind::Ident)
        fail("expected identifier, found `" + peek().text + "`");
    return take().text;
}

int64_t
TokenCursor::expectNumber()
{
    if (peek().kind == TokKind::Number)
        return take().number;
    // Allow negative literals where a number is required.
    if (peek().text == "-" && peek(1).kind == TokKind::Number) {
        take();
        return -take().number;
    }
    fail("expected number, found `" + peek().text + "`");
}

bool
TokenCursor::accept(const std::string &text)
{
    if (peek().text == text) {
        take();
        return true;
    }
    return false;
}

bool
TokenCursor::lookingAt(const std::string &text) const
{
    return peek().text == text;
}

void
TokenCursor::fail(const std::string &message) const
{
    metrics::counter("specs.parser.diagnostics").add();
    // Malformed pseudocode is recoverable library input: throw a
    // structured error (SpecDB skips the instruction) instead of
    // exiting the process from library code.
    throw ParseError(source_name_, peek().line, message);
}

} // namespace hydride

namespace hydride {

// ---- ExprParserBase ---------------------------------------------------------

TypedExpr
ExprParserBase::parseLocatedExpr()
{
    const int line = cur_.peek().line;
    TypedExpr out = parseExpr();
    if (out.expr)
        tagSourceLoc(out.expr, SourceLoc{cur_.sourceName(), line});
    return out;
}

TypedExpr
ExprParserBase::parseTernary()
{
    TypedExpr cond = parseOr();
    if (!cur_.accept("?"))
        return cond;
    TypedExpr then_e = parseTernary();
    cur_.expect(":");
    TypedExpr else_e = parseTernary();
    if (!cond.is_bv || cond.width != 1)
        cur_.fail("ternary condition must be a 1-bit value");
    if (then_e.is_bv && !else_e.is_bv)
        else_e = coerceLiteral(else_e, then_e.width);
    if (!then_e.is_bv && else_e.is_bv)
        then_e = coerceLiteral(then_e, else_e.width);
    if (!then_e.is_bv || then_e.width != else_e.width)
        cur_.fail("ternary branches must have matching widths");
    TypedExpr out;
    out.is_bv = true;
    out.width = then_e.width;
    out.expr = select(cond.expr, then_e.expr, else_e.expr);
    return out;
}

TypedExpr
ExprParserBase::parseOr()
{
    TypedExpr lhs = parseXor();
    while (cur_.lookingAt("|")) {
        cur_.take();
        lhs = combineBV(BVBinOp::Or, lhs, parseXor());
    }
    return lhs;
}

TypedExpr
ExprParserBase::parseXor()
{
    TypedExpr lhs = parseAnd();
    while (cur_.lookingAt("^")) {
        cur_.take();
        lhs = combineBV(BVBinOp::Xor, lhs, parseAnd());
    }
    return lhs;
}

TypedExpr
ExprParserBase::parseAnd()
{
    TypedExpr lhs = parseCmp();
    while (cur_.lookingAt("&")) {
        cur_.take();
        lhs = combineBV(BVBinOp::And, lhs, parseCmp());
    }
    return lhs;
}

TypedExpr
ExprParserBase::parseCmp()
{
    TypedExpr lhs = parseShift();
    static const char *kOps[] = {"==", "!=", "<", "<=", ">", ">="};
    for (const char *op : kOps) {
        if (cur_.lookingAt(op)) {
            cur_.take();
            TypedExpr rhs = parseShift();
            return makeCompare(op, lhs, rhs);
        }
    }
    return lhs;
}

TypedExpr
ExprParserBase::parseShift()
{
    TypedExpr lhs = parseAdd();
    while (true) {
        BVBinOp op;
        if (cur_.lookingAt("<<"))
            op = BVBinOp::Shl;
        else if (cur_.lookingAt(">>>"))
            op = BVBinOp::LShr;
        else if (cur_.lookingAt(">>"))
            op = BVBinOp::AShr;
        else
            break;
        cur_.take();
        TypedExpr rhs = parseAdd();
        if (!lhs.is_bv)
            cur_.fail("shift of a non-bitvector");
        if (!rhs.is_bv) {
            // Integer shift amounts become constants of operand width.
            rhs.expr = bvConst(intConst(lhs.width), rhs.expr);
            rhs.is_bv = true;
            rhs.width = lhs.width;
        }
        lhs = combineBV(op, lhs, rhs);
    }
    return lhs;
}

TypedExpr
ExprParserBase::parseAdd()
{
    TypedExpr lhs = parseMul();
    while (cur_.lookingAt("+") || cur_.lookingAt("-")) {
        const bool is_add = cur_.take().text == "+";
        TypedExpr rhs = parseMul();
        if (lhs.is_bv || rhs.is_bv) {
            lhs = combineBV(is_add ? BVBinOp::Add : BVBinOp::Sub, lhs, rhs);
        } else {
            lhs.expr = intBin(is_add ? IntBinOp::Add : IntBinOp::Sub,
                              lhs.expr, rhs.expr);
        }
    }
    return lhs;
}

TypedExpr
ExprParserBase::parseMul()
{
    TypedExpr lhs = parseUnary();
    while (cur_.lookingAt("*") || cur_.lookingAt("/") || cur_.lookingAt("%")) {
        const std::string op = cur_.take().text;
        TypedExpr rhs = parseUnary();
        if (op == "*" && (lhs.is_bv || rhs.is_bv)) {
            lhs = combineBV(BVBinOp::Mul, lhs, rhs);
        } else {
            requireInt(lhs, "integer arithmetic");
            requireInt(rhs, "integer arithmetic");
            const IntBinOp int_op = op == "*"   ? IntBinOp::Mul
                                    : op == "/" ? IntBinOp::Div
                                                : IntBinOp::Mod;
            lhs.expr = intBin(int_op, lhs.expr, rhs.expr);
        }
    }
    return lhs;
}

TypedExpr
ExprParserBase::parseUnary()
{
    if (cur_.accept("~")) {
        TypedExpr operand = parseUnary();
        if (!operand.is_bv)
            cur_.fail("~ applies to bitvectors");
        operand.expr = bvUn(BVUnOp::Not, operand.expr);
        return operand;
    }
    if (cur_.lookingAt("-") && cur_.peek(1).kind != TokKind::Number) {
        cur_.take();
        TypedExpr operand = parseUnary();
        if (operand.is_bv)
            operand.expr = bvUn(BVUnOp::Neg, operand.expr);
        else
            operand.expr = subI(intConst(0), operand.expr);
        return operand;
    }
    return parsePrimary();
}

void
ExprParserBase::requireInt(const TypedExpr &expr, const std::string &what)
{
    if (expr.is_bv)
        cur_.fail(what + " must be an integer expression");
}

int
ExprParserBase::constOf(const ExprPtr &expr, const std::string &what)
{
    ExprPtr folded = simplify(expr);
    if (folded->kind != ExprKind::IntConst)
        cur_.fail(what + " must fold to a constant");
    return static_cast<int>(folded->value);
}

int
ExprParserBase::sliceWidth(const ExprPtr &hi, const ExprPtr &lo)
{
    const int width = constOf(addI(subI(hi, lo), intConst(1)), "slice width");
    if (width < 1)
        cur_.fail("slice width must be positive");
    return width;
}

TypedExpr
ExprParserBase::coerceLiteral(TypedExpr value, int width)
{
    if (value.is_bv)
        return value;
    TypedExpr out;
    out.is_bv = true;
    out.width = width;
    out.expr = bvConst(intConst(width), value.expr);
    return out;
}

TypedExpr
ExprParserBase::combineBV(BVBinOp op, TypedExpr lhs, TypedExpr rhs)
{
    if (lhs.is_bv && !rhs.is_bv)
        rhs = coerceLiteral(rhs, lhs.width);
    if (!lhs.is_bv && rhs.is_bv)
        lhs = coerceLiteral(lhs, rhs.width);
    if (!lhs.is_bv || !rhs.is_bv)
        cur_.fail("bitvector operator applied to integers");
    if (lhs.width != rhs.width)
        cur_.fail("bitvector operand width mismatch");
    TypedExpr out;
    out.is_bv = true;
    out.width = lhs.width;
    out.expr = bvBin(op, lhs.expr, rhs.expr);
    return out;
}

TypedExpr
ExprParserBase::makeCompare(const std::string &op, TypedExpr lhs,
                            TypedExpr rhs, bool unsigned_cmp)
{
    // Integer comparisons are wrapped into 32-bit constants so the
    // comparison lives in the bitvector domain (Hydride IR has no
    // boolean integer type).
    if (!lhs.is_bv && !rhs.is_bv) {
        lhs = coerceLiteral(lhs, 32);
        rhs = coerceLiteral(rhs, 32);
    }
    if (lhs.is_bv && !rhs.is_bv)
        rhs = coerceLiteral(rhs, lhs.width);
    if (!lhs.is_bv && rhs.is_bv)
        lhs = coerceLiteral(lhs, rhs.width);
    if (lhs.width != rhs.width)
        cur_.fail("comparison width mismatch");
    TypedExpr out;
    out.is_bv = true;
    out.width = 1;
    const BVCmpOp lt = unsigned_cmp ? BVCmpOp::Ult : BVCmpOp::Slt;
    const BVCmpOp le = unsigned_cmp ? BVCmpOp::Ule : BVCmpOp::Sle;
    if (op == "==")
        out.expr = bvCmp(BVCmpOp::Eq, lhs.expr, rhs.expr);
    else if (op == "!=")
        out.expr = bvCmp(BVCmpOp::Ne, lhs.expr, rhs.expr);
    else if (op == "<")
        out.expr = bvCmp(lt, lhs.expr, rhs.expr);
    else if (op == "<=")
        out.expr = bvCmp(le, lhs.expr, rhs.expr);
    else if (op == ">")
        out.expr = bvCmp(lt, rhs.expr, lhs.expr);
    else
        out.expr = bvCmp(le, rhs.expr, lhs.expr);
    return out;
}

TypedExpr
ExprParserBase::callCast(BVCastOp op, std::vector<TypedExpr> &args,
                         const std::string &name)
{
    if (args.size() != 2)
        cur_.fail(name + " expects 2 arguments");
    if (!args[0].is_bv)
        cur_.fail(name + " operand must be a bitvector");
    requireInt(args[1], name + " width");
    const int width = constOf(args[1].expr, name + " width");
    TypedExpr out;
    out.is_bv = true;
    out.width = width;
    out.expr = bvCast(op, args[0].expr, intConst(width));
    return out;
}

TypedExpr
ExprParserBase::callBin(BVBinOp op, std::vector<TypedExpr> &args,
                        const std::string &name)
{
    if (args.size() != 2)
        cur_.fail(name + " expects 2 arguments");
    return combineBV(op, args[0], args[1]);
}

TypedExpr
ExprParserBase::callUn(BVUnOp op, std::vector<TypedExpr> &args,
                       const std::string &name)
{
    if (args.size() != 1)
        cur_.fail(name + " expects 1 argument");
    if (!args[0].is_bv)
        cur_.fail(name + " operand must be a bitvector");
    TypedExpr out = args[0];
    out.expr = bvUn(op, out.expr);
    return out;
}

} // namespace hydride
