/**
 * @file
 * Parser for the x86 (Intel Intrinsics Guide-style) pseudocode
 * dialect.
 *
 * Grammar sketch (statements):
 *
 *   DEFINE name(arg: bit[N] | arg: imm, ...) -> bit[N] LAT k
 *     FOR v := e to e ... ENDFOR
 *     v := int-expr                      // integer let
 *     dst[hi:lo] := bv-expr              // slice assignment
 *   ENDDEF
 *
 * Expressions: slices `a[hi:lo]` / single-bit `a[i]`, parenthesized
 * sub-expression slices `(e)[hi:lo]`, ternary `c ? t : f`, `| ^ &`,
 * comparisons, shifts `<< >> >>>`, `+ - *`, unary `- ~`, and the
 * intrinsic functions SignExtend, ZeroExtend, Truncate, Saturate,
 * SaturateU, MIN, MAX, MINU, MAXU, AVGU, AVGS, ABS, POPCNT.
 * The parser performs concrete bitwidth inference bottom-up.
 */
#ifndef HYDRIDE_SPECS_X86_PARSER_H
#define HYDRIDE_SPECS_X86_PARSER_H

#include "hir/semantics.h"
#include "specs/isa.h"

namespace hydride {

/** Parse one x86-dialect instruction definition. Fatal on malformed
 *  input (vendor specs are trusted, errors are bugs in the spec). */
SpecFunction parseX86Inst(const InstDef &inst);

} // namespace hydride

#endif // HYDRIDE_SPECS_X86_PARSER_H
