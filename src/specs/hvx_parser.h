/**
 * @file
 * Parser for the HVX (Qualcomm PRM C-style) pseudocode dialect.
 *
 * Grammar sketch:
 *
 *   INST name(Vu: vN | Rt: imm, ...) -> vN LAT k {
 *     for (i = 0; i < N; i++) { ... }
 *     dst.h[idx] = expr;        // lane accessor assignment
 *     dst[hi:lo] = expr;        // raw bit-slice assignment
 *   }
 *
 * Lane accessors `.b/.h/.w` (and unsigned aliases `.ub/.uh/.uw`)
 * denote 8/16/32-bit elements. Intrinsic functions: sxt, zxt, trunc,
 * sat, usat, min, max, minu, maxu, avg, avgu, abs, popcount.
 */
#ifndef HYDRIDE_SPECS_HVX_PARSER_H
#define HYDRIDE_SPECS_HVX_PARSER_H

#include "hir/semantics.h"
#include "specs/isa.h"

namespace hydride {

/** Parse one HVX-dialect instruction definition. */
SpecFunction parseHvxInst(const InstDef &inst);

} // namespace hydride

#endif // HYDRIDE_SPECS_HVX_PARSER_H
