#include "specs/x86_parser.h"

#include "specs/parser_common.h"
#include "support/error.h"

namespace hydride {

namespace {

/**
 * Recursive-descent parser for the Intel-style dialect. One instance
 * parses one instruction definition. Expression parsing and bitwidth
 * inference come from ExprParserBase; this class adds the DEFINE
 * header, the statement forms, slices and the x86 intrinsic-function
 * vocabulary.
 */
class X86Parser : public ExprParserBase
{
  public:
    explicit X86Parser(const InstDef &inst)
        : ExprParserBase(lexPseudocode(inst.pseudocode), "x86:" + inst.name)
    {
    }

    SpecFunction
    parse()
    {
        cur_.expect("DEFINE");
        fn_.isa = "x86";
        fn_.name = cur_.expectIdent();
        cur_.expect("(");
        if (!cur_.lookingAt(")")) {
            do {
                const std::string arg_name = cur_.expectIdent();
                cur_.expect(":");
                if (cur_.accept("imm")) {
                    fn_.int_args.push_back(arg_name);
                    scope_.int_vars[arg_name] = true;
                } else {
                    cur_.expect("bit");
                    cur_.expect("[");
                    const int width = static_cast<int>(cur_.expectNumber());
                    cur_.expect("]");
                    ParseScope::BVSym sym;
                    sym.index = static_cast<int>(fn_.bv_args.size());
                    sym.width = width;
                    scope_.bv_args[arg_name] = sym;
                    fn_.bv_args.push_back({arg_name, intConst(width)});
                }
            } while (cur_.accept(","));
        }
        cur_.expect(")");
        cur_.expect("->");
        cur_.expect("bit");
        cur_.expect("[");
        fn_.out_width = static_cast<int>(cur_.expectNumber());
        cur_.expect("]");
        cur_.expect("LAT");
        fn_.latency = static_cast<int>(cur_.expectNumber());
        fn_.body = parseStmts({"ENDDEF"});
        cur_.expect("ENDDEF");
        return std::move(fn_);
    }

  private:
    std::vector<StmtPtr>
    parseStmts(const std::vector<std::string> &terminators)
    {
        std::vector<StmtPtr> stmts;
        while (true) {
            for (const auto &term : terminators)
                if (cur_.lookingAt(term))
                    return stmts;
            stmts.push_back(parseStmt());
        }
    }

    StmtPtr
    parseStmt()
    {
        if (cur_.accept("FOR")) {
            const std::string var = cur_.expectIdent();
            cur_.expect(":=");
            TypedExpr lo = parseLocatedExpr();
            cur_.expect("to");
            TypedExpr hi = parseLocatedExpr();
            requireInt(lo, "FOR lower bound");
            requireInt(hi, "FOR upper bound");
            scope_.int_vars[var] = true;
            std::vector<StmtPtr> body = parseStmts({"ENDFOR"});
            cur_.expect("ENDFOR");
            scope_.int_vars.erase(var);
            return stmtFor(var, lo.expr, hi.expr, std::move(body));
        }
        if (cur_.lookingAt("dst")) {
            cur_.take();
            cur_.expect("[");
            TypedExpr hi = parseLocatedExpr();
            cur_.expect(":");
            TypedExpr lo = parseLocatedExpr();
            cur_.expect("]");
            cur_.expect(":=");
            TypedExpr value = parseLocatedExpr();
            requireInt(hi, "slice high index");
            requireInt(lo, "slice low index");
            const int width = sliceWidth(hi.expr, lo.expr);
            if (!value.is_bv)
                value = coerceLiteral(value, width);
            if (value.width != width)
                cur_.fail("slice width mismatch in assignment to dst");
            return stmtSliceAssign(lo.expr, intConst(width), value.expr);
        }
        // Integer let: ident := int-expr
        const std::string var = cur_.expectIdent();
        cur_.expect(":=");
        TypedExpr value = parseLocatedExpr();
        requireInt(value, "let binding");
        scope_.int_vars[var] = true;
        return stmtLetInt(var, value.expr);
    }

    TypedExpr
    parsePrimary() override
    {
        TypedExpr base = parseAtom();
        // Postfix slices: e[hi:lo] and single-bit e[idx].
        while (cur_.lookingAt("[") && base.is_bv) {
            cur_.take();
            TypedExpr hi = parseExpr();
            requireInt(hi, "slice index");
            TypedExpr out;
            out.is_bv = true;
            if (cur_.accept(":")) {
                TypedExpr lo = parseExpr();
                requireInt(lo, "slice low index");
                cur_.expect("]");
                out.width = sliceWidth(hi.expr, lo.expr);
                out.expr = extract(base.expr, lo.expr, intConst(out.width));
            } else {
                cur_.expect("]");
                out.width = 1;
                out.expr = extract(base.expr, hi.expr, intConst(1));
            }
            base = out;
        }
        return base;
    }

    TypedExpr
    parseAtom()
    {
        if (cur_.peek().kind == TokKind::Number) {
            TypedExpr out;
            out.expr = intConst(cur_.take().number);
            return out;
        }
        if (cur_.accept("-")) {
            TypedExpr out;
            out.expr = intConst(-cur_.expectNumber());
            return out;
        }
        if (cur_.accept("(")) {
            TypedExpr inner = parseExpr();
            cur_.expect(")");
            return inner;
        }
        const std::string name = cur_.expectIdent();
        if (cur_.lookingAt("(") && !scope_.isBV(name) && !scope_.isInt(name))
            return parseCall(name);
        if (scope_.isBV(name)) {
            const auto &sym = scope_.bv_args.at(name);
            TypedExpr out;
            out.is_bv = true;
            out.width = sym.width;
            out.expr = argBV(sym.index);
            return out;
        }
        if (scope_.isInt(name)) {
            TypedExpr out;
            out.expr = namedVar(name);
            return out;
        }
        cur_.fail("unknown identifier `" + name + "`");
    }

    TypedExpr
    parseCall(const std::string &name)
    {
        cur_.expect("(");
        std::vector<TypedExpr> args;
        if (!cur_.lookingAt(")")) {
            do {
                args.push_back(parseExpr());
            } while (cur_.accept(","));
        }
        cur_.expect(")");

        if (name == "SignExtend")
            return callCast(BVCastOp::SExt, args, name);
        if (name == "ZeroExtend")
            return callCast(BVCastOp::ZExt, args, name);
        if (name == "Truncate")
            return callCast(BVCastOp::Trunc, args, name);
        if (name == "Saturate")
            return callCast(BVCastOp::SatNarrowS, args, name);
        if (name == "SaturateU")
            return callCast(BVCastOp::SatNarrowU, args, name);
        if (name == "MIN")
            return callBin(BVBinOp::MinS, args, name);
        if (name == "MAX")
            return callBin(BVBinOp::MaxS, args, name);
        if (name == "MINU")
            return callBin(BVBinOp::MinU, args, name);
        if (name == "MAXU")
            return callBin(BVBinOp::MaxU, args, name);
        if (name == "AVGU")
            return callBin(BVBinOp::AvgU, args, name);
        if (name == "AVGS")
            return callBin(BVBinOp::AvgS, args, name);
        if (name == "ABS")
            return callUn(BVUnOp::AbsS, args, name);
        if (name == "POPCNT")
            return callUn(BVUnOp::Popcount, args, name);
        if (name == "CMPULT" || name == "CMPULE") {
            if (args.size() != 2)
                cur_.fail(name + " expects 2 arguments");
            return makeCompare(name == "CMPULT" ? "<" : "<=", args[0],
                               args[1], /*unsigned_cmp=*/true);
        }
        if (name == "ALLONES" || name == "ZEROS") {
            if (args.size() != 1)
                cur_.fail(name + " expects 1 argument");
            requireInt(args[0], name + " width");
            const int width = constOf(args[0].expr, name + " width");
            TypedExpr out;
            out.is_bv = true;
            out.width = width;
            out.expr = bvConst(intConst(width),
                               intConst(name == "ALLONES" ? -1 : 0));
            return out;
        }
        cur_.fail("unknown function `" + name + "`");
    }

    SpecFunction fn_;
};

} // namespace

SpecFunction
parseX86Inst(const InstDef &inst)
{
    return X86Parser(inst).parse();
}

} // namespace hydride
