/**
 * @file
 * The specification database: one-stop entry point that runs the full
 * offline front half of the pipeline for an ISA — generate the vendor
 * manual text, parse every instruction with the dialect parser, and
 * canonicalize into the two-level loop form — with process-lifetime
 * caching (the offline phase is run once per compiler build in the
 * paper's workflow).
 */
#ifndef HYDRIDE_SPECS_SPEC_DB_H
#define HYDRIDE_SPECS_SPEC_DB_H

#include <string>
#include <vector>

#include "hir/semantics.h"
#include "specs/isa.h"

namespace hydride {

/** Canonicalized semantics for a whole ISA. */
struct IsaSemantics
{
    std::string isa;
    std::vector<CanonicalSemantics> insts;
};

/** Names of the built-in ISAs: "x86", "hvx", "arm". */
const std::vector<std::string> &builtinIsas();

/** Vendor manual for an ISA (generated; cached). */
const IsaSpec &isaManual(const std::string &isa);

/** Parse one instruction of `isa` with that ISA's dialect parser. */
SpecFunction parseInst(const std::string &isa, const InstDef &inst);

/** Canonicalized semantics of every instruction of `isa` (cached). */
const IsaSemantics &isaSemantics(const std::string &isa);

/** Concatenated semantics of several ISAs. */
std::vector<CanonicalSemantics>
combinedSemantics(const std::vector<std::string> &isas);

} // namespace hydride

#endif // HYDRIDE_SPECS_SPEC_DB_H
