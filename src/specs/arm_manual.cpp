#include "specs/arm_manual.h"

#include "support/strings.h"

#include <vector>

namespace hydride {

namespace {

/** One scalar element type: signedness plus width. */
struct ElemType
{
    bool sign;
    int ew;

    std::string
    str() const
    {
        return format("%c%d", sign ? 's' : 'u', ew);
    }
    const char *
    ext() const
    {
        return sign ? "SExt" : "ZExt";
    }
    const char *
    sat() const
    {
        return sign ? "SSat" : "USat";
    }
};

struct ArmEmitter
{
    IsaSpec &spec;
    int vw;        ///< Input register width (64 = D form, 128 = Q form).
    std::string q; ///< "q" for the 128-bit forms.

    void
    inst(const std::string &name, const std::string &args, int out_w,
         int lat, const std::string &body)
    {
        std::string text =
            format("INSTRUCTION %s (%s) => bits(%d) LATENCY %d\n",
                   name.c_str(), args.c_str(), out_w, lat);
        text += body;
        text += "ENDINSTRUCTION\n";
        spec.insts.push_back({name, text});
    }

    std::string
    loop(int n, const std::string &body) const
    {
        return format("for e = 0 to %d do\n%send for", n - 1, body.c_str());
    }

    /** One-output-per-element instruction. */
    void
    simd(const std::string &name, const std::string &args, int out_w,
         int out_ew, int lat, const std::string &elem_expr)
    {
        const int n = out_w / out_ew;
        std::string body = format("for e = 0 to %d do\n", n - 1);
        body += format("Elem[dst, e, %d] = %s;\n", out_ew,
                       elem_expr.c_str());
        body += "endfor\n";
        inst(name, args, out_w, lat, body);
    }

    std::string
    args2() const
    {
        return format("a: bits(%d), b: bits(%d)", vw, vw);
    }
    std::string
    args1() const
    {
        return format("a: bits(%d)", vw);
    }
    std::string
    args3() const
    {
        return format("acc: bits(%d), a: bits(%d), b: bits(%d)", vw, vw, vw);
    }
};

/** `Elem[a, e, 16]` accessor string. */
std::string
el(const char *reg, int ew, const std::string &idx = "e")
{
    return format("Elem[%s, %s, %d]", reg, idx.c_str(), ew);
}

} // namespace

IsaSpec
generateArmManual()
{
    IsaSpec spec;
    spec.isa = "arm";

    std::vector<ElemType> all_types;
    for (bool sign : {true, false})
        for (int ew : {8, 16, 32, 64})
            all_types.push_back({sign, ew});
    std::vector<ElemType> narrow_types;
    for (bool sign : {true, false})
        for (int ew : {8, 16, 32})
            narrow_types.push_back({sign, ew});

    for (int vw : {64, 128}) {
        ArmEmitter e{spec, vw, vw == 128 ? "q" : ""};
        const char *q = e.q.c_str();

        auto name = [&](const char *stem, const ElemType &t) {
            return format("v%s%s_%s", stem, q, t.str().c_str());
        };

        // Wrap-around add/sub and saturating add/sub for all types.
        for (const auto &t : all_types) {
            const std::string A = el("a", t.ew);
            const std::string B = el("b", t.ew);
            e.simd(name("add", t), e.args2(), vw, t.ew, 1, A + " + " + B);
            e.simd(name("sub", t), e.args2(), vw, t.ew, 1, A + " - " + B);
            const int margin = t.sign ? 1 : 2;
            e.simd(name("qadd", t), e.args2(), vw, t.ew, 1,
                   format("%s(%s(%s, %d) + %s(%s, %d), %d)", t.sat(),
                          t.ext(), A.c_str(), t.ew + margin, t.ext(),
                          B.c_str(), t.ew + margin, t.ew));
            e.simd(name("qsub", t), e.args2(), vw, t.ew, 1,
                   format("%s(%s(%s, %d) - %s(%s, %d), %d)", t.sat(),
                          t.ext(), A.c_str(), t.ew + margin, t.ext(),
                          B.c_str(), t.ew + margin, t.ew));
        }

        // Halving / rounding-halving families, multiplies, min/max,
        // absolute difference, shifts and compares (8/16/32-bit).
        for (const auto &t : narrow_types) {
            const std::string A = el("a", t.ew);
            const std::string B = el("b", t.ew);
            const int w1 = t.ew + 1;

            e.simd(name("hadd", t), e.args2(), vw, t.ew, 1,
                   format("Trunc((%s(%s, %d) + %s(%s, %d)) >> 1, %d)",
                          t.ext(), A.c_str(), w1, t.ext(), B.c_str(), w1,
                          t.ew));
            e.simd(name("rhadd", t), e.args2(), vw, t.ew, 1,
                   format("%s(%s, %s)", t.sign ? "SAvg" : "UAvg", A.c_str(),
                          B.c_str()));
            e.simd(name("hsub", t), e.args2(), vw, t.ew, 1,
                   format("Trunc((%s(%s, %d) - %s(%s, %d)) >> 1, %d)",
                          t.ext(), A.c_str(), w1, t.ext(), B.c_str(), w1,
                          t.ew));

            e.simd(name("mul", t), e.args2(), vw, t.ew, 4, A + " * " + B);
            e.simd(name("mla", t), e.args3(), vw, t.ew, 4,
                   format("%s + %s * %s", el("acc", t.ew).c_str(), A.c_str(),
                          B.c_str()));
            e.simd(name("mls", t), e.args3(), vw, t.ew, 4,
                   format("%s - %s * %s", el("acc", t.ew).c_str(), A.c_str(),
                          B.c_str()));

            e.simd(name("min", t), e.args2(), vw, t.ew, 1,
                   format("%s(%s, %s)", t.sign ? "SMin" : "UMin", A.c_str(),
                          B.c_str()));
            e.simd(name("max", t), e.args2(), vw, t.ew, 1,
                   format("%s(%s, %s)", t.sign ? "SMax" : "UMax", A.c_str(),
                          B.c_str()));

            e.simd(name("abd", t), e.args2(), vw, t.ew, 1,
                   format("Trunc(Abs(%s(%s, %d) - %s(%s, %d)), %d)", t.ext(),
                          A.c_str(), w1, t.ext(), B.c_str(), w1, t.ew));
            e.simd(name("aba", t), e.args3(), vw, t.ew, 1,
                   format("%s + Trunc(Abs(%s(%s, %d) - %s(%s, %d)), %d)",
                          el("acc", t.ew).c_str(), t.ext(), A.c_str(), w1,
                          t.ext(), B.c_str(), w1, t.ew));

            // Register shifts mask the amount to the lane width.
            e.simd(name("shl", t), e.args2(), vw, t.ew, 1,
                   format("%s << (%s & %d)", A.c_str(), B.c_str(),
                          t.ew - 1));
            const std::string wide_amt =
                format("(ZExt(%s, %d) & %d)", B.c_str(), 2 * t.ew,
                       t.ew - 1);
            e.simd(name("qshl", t), e.args2(), vw, t.ew, 1,
                   format("%s(%s(%s, %d) << %s, %d)", t.sat(), t.ext(),
                          A.c_str(), 2 * t.ew, wide_amt.c_str(), t.ew));
            e.simd(name("rshl", t), e.args2(), vw, t.ew, 1,
                   format("Trunc(%s(%s, %d) << %s, %d)", t.ext(), A.c_str(),
                          2 * t.ew, wide_amt.c_str(), t.ew));

            // Absolute value / negation (plain and saturating).
            if (t.sign) {
                e.simd(name("abs", t), e.args1(), vw, t.ew, 1,
                       format("Abs(%s)", A.c_str()));
                e.simd(name("qabs", t), e.args1(), vw, t.ew, 1,
                       format("SSat(Abs(SExt(%s, %d)), %d)", A.c_str(), w1,
                              t.ew));
                e.simd(name("neg", t), e.args1(), vw, t.ew, 1,
                       format("Trunc(Zeros(%d) - SExt(%s, %d), %d)", w1,
                              A.c_str(), w1, t.ew));
                e.simd(name("qneg", t), e.args1(), vw, t.ew, 1,
                       format("SSat(Zeros(%d) - SExt(%s, %d), %d)", w1,
                              A.c_str(), w1, t.ew));
            }

            // Per-element test: any common set bit.
            e.simd(name("tst", t), e.args2(), vw, t.ew, 1,
                   format("(%s & %s) != Zeros(%d) ? Ones(%d) : Zeros(%d)",
                          A.c_str(), B.c_str(), t.ew, t.ew, t.ew));
        }

        // Compares for every element size.
        for (const auto &t : all_types) {
            const std::string A = el("a", t.ew);
            const std::string B = el("b", t.ew);
            auto mask = [&](const std::string &cond) {
                return format("%s ? Ones(%d) : Zeros(%d)", cond.c_str(),
                              t.ew, t.ew);
            };
            e.simd(name("ceq", t), e.args2(), vw, t.ew, 1,
                   mask(A + " == " + B));
            e.simd(name("cgt", t), e.args2(), vw, t.ew, 1,
                   mask(t.sign ? A + " > " + B
                               : format("UGT(%s, %s)", A.c_str(),
                                        B.c_str())));
            e.simd(name("cge", t), e.args2(), vw, t.ew, 1,
                   mask(t.sign ? A + " >= " + B
                               : format("UGE(%s, %s)", A.c_str(),
                                        B.c_str())));
            e.simd(name("clt", t), e.args2(), vw, t.ew, 1,
                   mask(t.sign ? A + " < " + B
                               : format("UGT(%s, %s)", B.c_str(),
                                        A.c_str())));
            e.simd(name("cle", t), e.args2(), vw, t.ew, 1,
                   mask(t.sign ? A + " <= " + B
                               : format("UGE(%s, %s)", B.c_str(),
                                        A.c_str())));
        }

        // Immediate shifts, shift-insert, broadcast for all types.
        for (const auto &t : all_types) {
            const std::string A = el("a", t.ew);
            const std::string B = el("b", t.ew);
            const std::string args_imm =
                format("a: bits(%d), n: imm", vw);
            e.simd(name("shl_n", t), args_imm, vw, t.ew, 1, A + " << n");
            e.simd(name("shr_n", t), args_imm, vw, t.ew, 1,
                   t.sign ? A + " >> n" : A + " >>> n");
            e.simd(name("rshr_n", t), args_imm, vw, t.ew, 1,
                   format("Trunc(((%s(%s, %d) >> (n - 1)) + 1) >> 1, %d)",
                          t.ext(), A.c_str(), t.ew + 1, t.ew));
            const std::string args2_imm =
                format("a: bits(%d), b: bits(%d), n: imm", vw, vw);
            e.simd(name("sli_n", t), args2_imm, vw, t.ew, 1,
                   format("(%s << n) | (%s & ~(Ones(%d) << n))", B.c_str(),
                          A.c_str(), t.ew));
            e.simd(name("sri_n", t), args2_imm, vw, t.ew, 1,
                   format("(%s >>> n) | (%s & ~(Ones(%d) >>> n))", B.c_str(),
                          A.c_str(), t.ew));
            e.simd(name("dup", t), format("a: bits(%d)", t.ew), vw, t.ew, 1,
                   format("Bits(a, %d, 0)", t.ew - 1));
        }

        // Whole-register logic, named per type as NEON does.
        for (const auto &t : all_types) {
            const int w = vw - 1;
            auto whole = [&](const char *stem, const std::string &expr) {
                e.inst(name(stem, t), e.args2(), vw, 1,
                       format("dst = %s;\n", expr.c_str()));
            };
            whole("and", format("Bits(a, %d, 0) & Bits(b, %d, 0)", w, w));
            whole("orr", format("Bits(a, %d, 0) | Bits(b, %d, 0)", w, w));
            whole("eor", format("Bits(a, %d, 0) ^ Bits(b, %d, 0)", w, w));
            whole("bic", format("Bits(a, %d, 0) & ~Bits(b, %d, 0)", w, w));
            whole("orn", format("Bits(a, %d, 0) | ~Bits(b, %d, 0)", w, w));
            e.inst(name("bsl", t),
                   format("m: bits(%d), a: bits(%d), b: bits(%d)", vw, vw,
                          vw),
                   vw, 1,
                   format("dst = (Bits(m, %d, 0) & Bits(a, %d, 0)) | "
                          "(~Bits(m, %d, 0) & Bits(b, %d, 0));\n",
                          w, w, w, w));
        }

        // Zip / unzip / transpose / extract / reverse swizzles.
        for (const auto &t : all_types) {
            const int n = vw / t.ew;
            if (n < 2)
                continue;
            const int half = n / 2;
            // zip1/zip2: interleave lower (upper) halves.
            for (int hi = 0; hi < 2; ++hi) {
                e.inst(name(hi ? "zip2" : "zip1", t), e.args2(), vw, 1,
                       format("for e = 0 to %d do\n"
                              "Elem[dst, 2*e, %d] = Elem[a, e + %d, %d];\n"
                              "Elem[dst, 2*e + 1, %d] = Elem[b, e + %d, "
                              "%d];\nendfor\n",
                              half - 1, t.ew, hi * half, t.ew, t.ew,
                              hi * half, t.ew));
            }
            // uzp1/uzp2: even (odd) elements of the pair a:b.
            for (int odd = 0; odd < 2; ++odd) {
                std::string body;
                body += format("for e = 0 to %d do\n"
                               "Elem[dst, e, %d] = Elem[a, 2*e + %d, %d];\n"
                               "endfor\n",
                               half - 1, t.ew, odd, t.ew);
                body += format("for e = 0 to %d do\n"
                               "Elem[dst, %d + e, %d] = Elem[b, 2*e + %d, "
                               "%d];\nendfor\n",
                               half - 1, half, t.ew, odd, t.ew);
                e.inst(name(odd ? "uzp2" : "uzp1", t), e.args2(), vw, 1,
                       body);
            }
            // trn1/trn2: transpose pairs.
            for (int odd = 0; odd < 2; ++odd) {
                e.inst(name(odd ? "trn2" : "trn1", t), e.args2(), vw, 1,
                       format("for e = 0 to %d do\n"
                              "Elem[dst, 2*e, %d] = Elem[a, 2*e + %d, %d];\n"
                              "Elem[dst, 2*e + 1, %d] = Elem[b, 2*e + %d, "
                              "%d];\nendfor\n",
                              half - 1, t.ew, odd, t.ew, t.ew, odd, t.ew));
            }
            // ext: extract from the concatenation a:b at element n.
            e.simd(name("ext", t),
                   format("a: bits(%d), b: bits(%d), n: imm", vw, vw), vw,
                   t.ew, 1,
                   format("(e + n) < %d ? Elem[a, e + n, %d] : "
                          "Elem[b, e + n - %d, %d]",
                          n, t.ew, n, t.ew));
        }

        // D/Q register plumbing: vget_low/vget_high (Q form only) and
        // vcombine (D form only).
        if (vw == 128) {
            for (const auto &t : narrow_types) {
                const int n = 64 / t.ew;
                e.inst(format("vget_low_%s", t.str().c_str()),
                       format("a: bits(128)"), 64, 0,
                       format("for e = 0 to %d do\n"
                              "Elem[dst, e, %d] = Elem[a, e, %d];\nendfor\n",
                              n - 1, t.ew, t.ew));
                e.inst(format("vget_high_%s", t.str().c_str()),
                       format("a: bits(128)"), 64, 1,
                       format("for e = 0 to %d do\n"
                              "Elem[dst, e, %d] = Elem[a, e + %d, %d];\n"
                              "endfor\n",
                              n - 1, t.ew, n, t.ew));
            }
        } else {
            for (const auto &t : narrow_types) {
                const int n = 64 / t.ew;
                std::string body;
                body += format("for e = 0 to %d do\n"
                               "Elem[dst, e, %d] = Elem[a, e, %d];\nendfor\n",
                               n - 1, t.ew, t.ew);
                body += format("for e = 0 to %d do\n"
                               "Elem[dst, %d + e, %d] = Elem[b, e, %d];\n"
                               "endfor\n",
                               n - 1, n, t.ew, t.ew);
                e.inst(format("vcombine_%s", t.str().c_str()),
                       format("a: bits(64), b: bits(64)"), 128, 1, body);
            }
        }

        // rev16/rev32/rev64: reverse elements within groups.
        for (const auto &t : narrow_types) {
            for (int group_bits : {16, 32, 64}) {
                if (group_bits <= t.ew)
                    continue;
                const int g = group_bits / t.ew;
                e.simd(format("vrev%d%s_%s", group_bits, q,
                              t.str().c_str()),
                       e.args1(), vw, t.ew, 1,
                       format("Elem[a, %d*(e / %d) + %d - e %% %d, %d]", g,
                              g, g - 1, g, t.ew));
            }
        }

        // Population count (byte elements).
        for (bool sign : {true, false}) {
            ElemType t{sign, 8};
            e.simd(name("cnt", t), e.args1(), vw, 8, 1,
                   format("PopCount(%s)", el("a", 8).c_str()));
        }

        // Pairwise add/max/min, widening pairwise and accumulating.
        for (const auto &t : narrow_types) {
            const int n = vw / t.ew;
            const int half = n / 2;
            struct PFam
            {
                const char *stem;
                const char *fmt_s;
                const char *fmt_u;
            };
            // vpadd / vpmax / vpmin: first half from a, second from b.
            auto pairwise = [&](const char *stem, const std::string &s_expr,
                                const std::string &u_expr) {
                const std::string &expr = t.sign ? s_expr : u_expr;
                std::string body;
                body += format("for e = 0 to %d do\n"
                               "Elem[dst, e, %d] = %s;\nendfor\n",
                               half - 1, t.ew,
                               replaceAll(expr, "$r", "a").c_str());
                body += format("for e = 0 to %d do\n"
                               "Elem[dst, %d + e, %d] = %s;\nendfor\n",
                               half - 1, half, t.ew,
                               replaceAll(expr, "$r", "b").c_str());
                e.inst(name(stem, t), e.args2(), vw, 1, body);
            };
            const std::string pa =
                format("Elem[$r, 2*e, %d] + Elem[$r, 2*e + 1, %d]", t.ew,
                       t.ew);
            pairwise("padd", pa, pa);
            pairwise("pmax",
                     format("SMax(Elem[$r, 2*e, %d], Elem[$r, 2*e + 1, %d])",
                            t.ew, t.ew),
                     format("UMax(Elem[$r, 2*e, %d], Elem[$r, 2*e + 1, %d])",
                            t.ew, t.ew));
            pairwise("pmin",
                     format("SMin(Elem[$r, 2*e, %d], Elem[$r, 2*e + 1, %d])",
                            t.ew, t.ew),
                     format("UMin(Elem[$r, 2*e, %d], Elem[$r, 2*e + 1, %d])",
                            t.ew, t.ew));

            // paddl: widening pairwise add; padal: accumulate into it.
            const int wide = 2 * t.ew;
            e.simd(name("paddl", t), e.args1(), vw, wide, 1,
                   format("%s(Elem[a, 2*e, %d], %d) + %s(Elem[a, 2*e + 1, "
                          "%d], %d)",
                          t.ext(), t.ew, wide, t.ext(), t.ew, wide));
            e.simd(name("padal", t),
                   format("acc: bits(%d), a: bits(%d)", vw, vw), vw, wide, 1,
                   format("Elem[acc, e, %d] + %s(Elem[a, 2*e, %d], %d) + "
                          "%s(Elem[a, 2*e + 1, %d], %d)",
                          wide, t.ext(), t.ew, wide, t.ext(), t.ew, wide));
        }

        // Saturating doubling multiply high.
        for (int ew : {16, 32}) {
            ElemType t{true, ew};
            const std::string A = el("a", ew);
            const std::string B = el("b", ew);
            e.simd(name("qdmulh", t), e.args2(), vw, ew, 4,
                   format("SSat((SExt(%s, %d) * SExt(%s, %d) * 2) >> %d, %d)",
                          A.c_str(), 2 * ew + 1, B.c_str(), 2 * ew + 1, ew,
                          ew));
            e.simd(name("qrdmulh", t), e.args2(), vw, ew, 4,
                   format("SSat((((SExt(%s, %d) * SExt(%s, %d) * 2) >> %d) "
                          "+ 1) >> 1, %d)",
                          A.c_str(), 2 * ew + 2, B.c_str(), 2 * ew + 2,
                          ew - 1, ew));
        }

        // 4-way byte dot products with accumulator (sdot/udot).
        for (bool sign : {true, false}) {
            ElemType t{sign, 32};
            std::string dot;
            for (int k = 0; k < 4; ++k) {
                if (k)
                    dot += " + ";
                dot += format("%s(Elem[a, 4*e + %d, 8], 32) * %s(Elem[b, "
                              "4*e + %d, 8], 32)",
                              t.ext(), k, t.ext(), k);
            }
            e.simd(format("v%sdot%s_%s32", sign ? "s" : "u", q,
                          sign ? "s" : "u"),
                   e.args3(), vw, 32, 4,
                   format("%s + %s", el("acc", 32).c_str(), dot.c_str()));
        }

        if (vw == 64) {
            // Widening (long) instructions: D inputs, Q output.
            for (const auto &t : narrow_types) {
                const int wide = 2 * t.ew;
                const int n = 64 / t.ew;
                const std::string args2 = e.args2();
                auto wname = [&](const char *stem) {
                    return format("v%s_%s", stem, t.str().c_str());
                };
                auto wsimd = [&](const char *stem, const std::string &args,
                                 int lat, const std::string &expr) {
                    const int out_w = n * wide;
                    std::string body = format("for e = 0 to %d do\n", n - 1);
                    body += format("Elem[dst, e, %d] = %s;\n", wide,
                                   expr.c_str());
                    body += "endfor\n";
                    e.inst(wname(stem), args, out_w, lat, body);
                };
                const std::string EA =
                    format("%s(%s, %d)", t.ext(), el("a", t.ew).c_str(),
                           wide);
                const std::string EB =
                    format("%s(%s, %d)", t.ext(), el("b", t.ew).c_str(),
                           wide);
                wsimd("movl", e.args1(), 1, EA);
                wsimd("addl", args2, 1, EA + " + " + EB);
                wsimd("subl", args2, 1, EA + " - " + EB);
                wsimd("abdl", args2, 1,
                      format("ZExt(Trunc(Abs(%s(%s, %d) - %s(%s, %d)), %d), "
                             "%d)",
                             t.ext(), el("a", t.ew).c_str(), t.ew + 1,
                             t.ext(), el("b", t.ew).c_str(), t.ew + 1, t.ew,
                             wide));
                wsimd("mull", args2, 4, EA + " * " + EB);
                const std::string acc_args = format(
                    "acc: bits(%d), a: bits(%d), b: bits(%d)", n * wide, 64,
                    64);
                wsimd("mlal", acc_args, 4,
                      format("Elem[acc, e, %d] + %s * %s", wide, EA.c_str(),
                             EB.c_str()));
                wsimd("mlsl", acc_args, 4,
                      format("Elem[acc, e, %d] - %s * %s", wide, EA.c_str(),
                             EB.c_str()));
                // addw/subw: wide first operand.
                const std::string waargs = format(
                    "a: bits(%d), b: bits(%d)", n * wide, 64);
                wsimd("addw", waargs, 1,
                      format("Elem[a, e, %d] + %s", wide, EB.c_str()));
                wsimd("subw", waargs, 1,
                      format("Elem[a, e, %d] - %s", wide, EB.c_str()));
                wsimd("shll_n", format("a: bits(64), n: imm"), 1,
                      format("%s << n", EA.c_str()));
            }
        } else {
            // Narrowing instructions: Q input, D output.
            for (const auto &t : narrow_types) {
                if (!t.sign)
                    continue; // NEON names narrows by the input type.
                const int in_ew = 2 * t.ew;
                const int n = 128 / in_ew;
                auto nsimd = [&](const std::string &iname,
                                 const std::string &args,
                                 const std::string &expr) {
                    std::string body = format("for e = 0 to %d do\n", n - 1);
                    body += format("Elem[dst, e, %d] = %s;\n", t.ew,
                                   expr.c_str());
                    body += "endfor\n";
                    e.inst(iname, args, 64, 1, body);
                };
                const std::string in_t = format("s%d", in_ew);
                const std::string A = el("a", in_ew);
                const std::string B = el("b", in_ew);
                nsimd(format("vmovn_%s", in_t.c_str()), e.args1(),
                      format("Trunc(%s, %d)", A.c_str(), t.ew));
                nsimd(format("vqmovn_%s", in_t.c_str()), e.args1(),
                      format("SSat(%s, %d)", A.c_str(), t.ew));
                nsimd(format("vqmovn_u%d", in_ew), e.args1(),
                      format("USat(ZExt(%s, %d), %d)", A.c_str(), in_ew + 1,
                             t.ew));
                nsimd(format("vqmovun_%s", in_t.c_str()), e.args1(),
                      format("USat(%s, %d)", A.c_str(), t.ew));
                nsimd(format("vaddhn_%s", in_t.c_str()), e.args2(),
                      format("Bits(%s + %s, %d, %d)", A.c_str(), B.c_str(),
                             in_ew - 1, t.ew));
                nsimd(format("vsubhn_%s", in_t.c_str()), e.args2(),
                      format("Bits(%s - %s, %d, %d)", A.c_str(), B.c_str(),
                             in_ew - 1, t.ew));
                nsimd(format("vraddhn_%s", in_t.c_str()), e.args2(),
                      format("Bits(%s + %s + %lld, %d, %d)", A.c_str(),
                             B.c_str(),
                             static_cast<long long>(1ll << (t.ew - 1)),
                             in_ew - 1, t.ew));
                nsimd(format("vshrn_n_%s", in_t.c_str()),
                      format("a: bits(128), n: imm"),
                      format("Trunc(%s >> n, %d)", A.c_str(), t.ew));
                nsimd(format("vqshrn_n_%s", in_t.c_str()),
                      format("a: bits(128), n: imm"),
                      format("SSat(%s >> n, %d)", A.c_str(), t.ew));
                nsimd(format("vqshrun_n_%s", in_t.c_str()),
                      format("a: bits(128), n: imm"),
                      format("USat(%s >> n, %d)", A.c_str(), t.ew));
                nsimd(format("vrshrn_n_%s", in_t.c_str()),
                      format("a: bits(128), n: imm"),
                      format("Trunc(((%s >> (n - 1)) + 1) >> 1, %d)",
                             A.c_str(), t.ew));
            }
        }
    }

    return spec;
}

} // namespace hydride
