#include "specs/hvx_parser.h"

#include "specs/parser_common.h"
#include "support/error.h"

namespace hydride {

namespace {

/** Lane accessor table: suffix -> element width. */
int
laneWidth(const std::string &suffix)
{
    if (suffix == "b" || suffix == "ub")
        return 8;
    if (suffix == "h" || suffix == "uh")
        return 16;
    if (suffix == "w" || suffix == "uw")
        return 32;
    return 0;
}

class HvxParser : public ExprParserBase
{
  public:
    explicit HvxParser(const InstDef &inst)
        : ExprParserBase(lexPseudocode(inst.pseudocode), "hvx:" + inst.name)
    {
    }

    SpecFunction
    parse()
    {
        cur_.expect("INST");
        fn_.isa = "hvx";
        fn_.name = cur_.expectIdent();
        cur_.expect("(");
        if (!cur_.lookingAt(")")) {
            do {
                const std::string arg_name = cur_.expectIdent();
                cur_.expect(":");
                if (cur_.accept("imm")) {
                    fn_.int_args.push_back(arg_name);
                    scope_.int_vars[arg_name] = true;
                } else {
                    const int width = expectVecType();
                    ParseScope::BVSym sym;
                    sym.index = static_cast<int>(fn_.bv_args.size());
                    sym.width = width;
                    scope_.bv_args[arg_name] = sym;
                    fn_.bv_args.push_back({arg_name, intConst(width)});
                }
            } while (cur_.accept(","));
        }
        cur_.expect(")");
        cur_.expect("->");
        fn_.out_width = expectVecType();
        cur_.expect("LAT");
        fn_.latency = static_cast<int>(cur_.expectNumber());
        cur_.expect("{");
        fn_.body = parseStmts();
        cur_.expect("}");
        return std::move(fn_);
    }

  private:
    /** Parse `vN` as a vector type, returning the width N. */
    int
    expectVecType()
    {
        const std::string type = cur_.expectIdent();
        if (type.size() < 2 || type[0] != 'v')
            cur_.fail("expected vector type `vN`");
        return std::stoi(type.substr(1));
    }

    std::vector<StmtPtr>
    parseStmts()
    {
        std::vector<StmtPtr> stmts;
        while (!cur_.lookingAt("}"))
            stmts.push_back(parseStmt());
        return stmts;
    }

    StmtPtr
    parseStmt()
    {
        if (cur_.accept("for")) {
            cur_.expect("(");
            const std::string var = cur_.expectIdent();
            cur_.expect("=");
            TypedExpr lo = parseLocatedExpr();
            requireInt(lo, "for lower bound");
            cur_.expect(";");
            const std::string var2 = cur_.expectIdent();
            if (var2 != var)
                cur_.fail("for-loop condition must test the loop variable");
            cur_.expect("<");
            TypedExpr bound = parseLocatedExpr();
            requireInt(bound, "for upper bound");
            cur_.expect(";");
            const std::string var3 = cur_.expectIdent();
            if (var3 != var)
                cur_.fail("for-loop increment must bump the loop variable");
            cur_.expect("+");
            cur_.expect("+");
            cur_.expect(")");
            cur_.expect("{");
            scope_.int_vars[var] = true;
            std::vector<StmtPtr> body = parseStmts();
            cur_.expect("}");
            scope_.int_vars.erase(var);
            return stmtFor(var, lo.expr,
                           simplify(subI(bound.expr, intConst(1))),
                           std::move(body));
        }
        if (cur_.lookingAt("dst")) {
            cur_.take();
            ExprPtr low;
            int width = 0;
            if (cur_.accept(".")) {
                const std::string suffix = cur_.expectIdent();
                width = laneWidth(suffix);
                if (width == 0)
                    cur_.fail("unknown lane accessor `." + suffix + "`");
                cur_.expect("[");
                TypedExpr idx = parseLocatedExpr();
                requireInt(idx, "lane index");
                cur_.expect("]");
                low = mulI(idx.expr, intConst(width));
            } else {
                cur_.expect("[");
                TypedExpr hi = parseLocatedExpr();
                cur_.expect(":");
                TypedExpr lo = parseLocatedExpr();
                cur_.expect("]");
                requireInt(hi, "slice high index");
                requireInt(lo, "slice low index");
                width = sliceWidth(hi.expr, lo.expr);
                low = lo.expr;
            }
            cur_.expect("=");
            TypedExpr value = parseLocatedExpr();
            cur_.expect(";");
            if (!value.is_bv)
                value = coerceLiteral(value, width);
            if (value.width != width)
                cur_.fail("lane width mismatch in assignment to dst");
            return stmtSliceAssign(low, intConst(width), value.expr);
        }
        const std::string var = cur_.expectIdent();
        cur_.expect("=");
        TypedExpr value = parseLocatedExpr();
        cur_.expect(";");
        requireInt(value, "let binding");
        scope_.int_vars[var] = true;
        return stmtLetInt(var, value.expr);
    }

    TypedExpr
    parsePrimary() override
    {
        TypedExpr base = parseAtom();
        while (base.is_bv) {
            if (cur_.accept(".")) {
                const std::string suffix = cur_.expectIdent();
                const int width = laneWidth(suffix);
                if (width == 0)
                    cur_.fail("unknown lane accessor `." + suffix + "`");
                cur_.expect("[");
                TypedExpr idx = parseExpr();
                requireInt(idx, "lane index");
                cur_.expect("]");
                TypedExpr out;
                out.is_bv = true;
                out.width = width;
                out.expr = extract(base.expr, mulI(idx.expr, intConst(width)),
                                   intConst(width));
                base = out;
            } else if (cur_.lookingAt("[")) {
                cur_.take();
                TypedExpr hi = parseExpr();
                requireInt(hi, "slice index");
                cur_.expect(":");
                TypedExpr lo = parseExpr();
                requireInt(lo, "slice low index");
                cur_.expect("]");
                TypedExpr out;
                out.is_bv = true;
                out.width = sliceWidth(hi.expr, lo.expr);
                out.expr = extract(base.expr, lo.expr, intConst(out.width));
                base = out;
            } else {
                break;
            }
        }
        return base;
    }

    TypedExpr
    parseAtom()
    {
        if (cur_.peek().kind == TokKind::Number) {
            TypedExpr out;
            out.expr = intConst(cur_.take().number);
            return out;
        }
        if (cur_.accept("(")) {
            TypedExpr inner = parseExpr();
            cur_.expect(")");
            return inner;
        }
        const std::string name = cur_.expectIdent();
        if (cur_.lookingAt("(") && !scope_.isBV(name) && !scope_.isInt(name))
            return parseCall(name);
        if (scope_.isBV(name)) {
            const auto &sym = scope_.bv_args.at(name);
            TypedExpr out;
            out.is_bv = true;
            out.width = sym.width;
            out.expr = argBV(sym.index);
            return out;
        }
        if (scope_.isInt(name)) {
            TypedExpr out;
            out.expr = namedVar(name);
            return out;
        }
        cur_.fail("unknown identifier `" + name + "`");
    }

    TypedExpr
    parseCall(const std::string &name)
    {
        cur_.expect("(");
        std::vector<TypedExpr> args;
        if (!cur_.lookingAt(")")) {
            do {
                args.push_back(parseExpr());
            } while (cur_.accept(","));
        }
        cur_.expect(")");

        if (name == "sxt")
            return callCast(BVCastOp::SExt, args, name);
        if (name == "zxt")
            return callCast(BVCastOp::ZExt, args, name);
        if (name == "trunc")
            return callCast(BVCastOp::Trunc, args, name);
        if (name == "sat")
            return callCast(BVCastOp::SatNarrowS, args, name);
        if (name == "usat")
            return callCast(BVCastOp::SatNarrowU, args, name);
        if (name == "min")
            return callBin(BVBinOp::MinS, args, name);
        if (name == "max")
            return callBin(BVBinOp::MaxS, args, name);
        if (name == "minu")
            return callBin(BVBinOp::MinU, args, name);
        if (name == "maxu")
            return callBin(BVBinOp::MaxU, args, name);
        if (name == "avg")
            return callBin(BVBinOp::AvgS, args, name);
        if (name == "avgu")
            return callBin(BVBinOp::AvgU, args, name);
        if (name == "abs")
            return callUn(BVUnOp::AbsS, args, name);
        if (name == "popcount")
            return callUn(BVUnOp::Popcount, args, name);
        cur_.fail("unknown function `" + name + "`");
    }

    SpecFunction fn_;
};

} // namespace

SpecFunction
parseHvxInst(const InstDef &inst)
{
    return HvxParser(inst).parse();
}

} // namespace hydride
