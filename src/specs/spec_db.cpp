#include "specs/spec_db.h"

#include "analysis/inst_verify.h"
#include "hir/canonicalize.h"
#include "observability/metrics.h"
#include "observability/trace.h"
#include "specs/arm_manual.h"
#include "specs/arm_parser.h"
#include "specs/hvx_manual.h"
#include "specs/hvx_parser.h"
#include "specs/x86_manual.h"
#include "specs/x86_parser.h"
#include "support/error.h"
#include "support/faults.h"

#include <map>
#include <mutex>

namespace hydride {

const std::vector<std::string> &
builtinIsas()
{
    static const std::vector<std::string> isas = {"x86", "hvx", "arm"};
    return isas;
}

const IsaSpec &
isaManual(const std::string &isa)
{
    static std::map<std::string, IsaSpec> cache;
    static std::mutex mutex;
    std::lock_guard<std::mutex> lock(mutex);
    auto it = cache.find(isa);
    if (it != cache.end())
        return it->second;
    trace::TraceSpan span("specs.manual.generate");
    span.setAttr("isa", isa);
    IsaSpec spec;
    if (isa == "x86")
        spec = generateX86Manual();
    else if (isa == "hvx")
        spec = generateHvxManual();
    else if (isa == "arm")
        spec = generateArmManual();
    else
        fatal("unknown ISA `" + isa + "`");
    span.setAttr("instructions", static_cast<int64_t>(spec.insts.size()));
    return cache.emplace(isa, std::move(spec)).first->second;
}

SpecFunction
parseInst(const std::string &isa, const InstDef &inst)
{
    metrics::counter("specs.parser." + isa + ".instructions").add();
    // Chaos seam: a keyed clause (`parser.malformed=vadd_s16`) makes
    // this one instruction read as malformed vendor pseudocode.
    if (faults::shouldFail("parser.malformed", inst.name))
        throw ParseError(isa + ":" + inst.name, 1,
                         "injected malformed pseudocode");
    if (isa == "x86")
        return parseX86Inst(inst);
    if (isa == "hvx")
        return parseHvxInst(inst);
    if (isa == "arm")
        return parseArmInst(inst);
    fatal("unknown ISA `" + isa + "`");
}

const IsaSemantics &
isaSemantics(const std::string &isa)
{
    static std::map<std::string, IsaSemantics> cache;
    static std::mutex mutex;
    std::lock_guard<std::mutex> lock(mutex);
    auto it = cache.find(isa);
    if (it != cache.end())
        return it->second;

    trace::TraceSpan span("specs.semantics.parse");
    span.setAttr("isa", isa);
    IsaSemantics sema;
    sema.isa = isa;
    const bool verify = analysis::loadTimeVerifyEnabled();
    static metrics::Counter &parse_failures =
        metrics::counter("specs.parse.failures");
    for (const auto &inst : isaManual(isa).insts) {
        // A malformed vendor spec must not kill the process: skip the
        // offending instruction with a structured warning citing the
        // pseudocode location and keep building the database. The
        // rest of the pipeline degrades gracefully (one fewer
        // instruction to merge / synthesize with).
        try {
            SpecFunction fn = parseInst(isa, inst);
            if (faults::shouldFail("specdb.corrupt", inst.name))
                throw ParseError(isa + ":" + inst.name, 1,
                                 "injected corrupt canonical form");
            CanonicalizeResult result = canonicalize(fn);
            if (!result.ok) {
                parse_failures.add();
                warn("skipping " + isa + ":" + inst.name +
                     ": canonicalization failed: " + result.error);
                continue;
            }
            if (verify) {
                // Debug-mode assertion: the cheap per-instruction
                // passes must come back clean on everything we hand
                // downstream.
                analysis::DiagnosticReport report;
                analysis::verifyInstruction(
                    result.sem,
                    analysis::kWellFormed | analysis::kUndefined, {},
                    report);
                if (report.hasErrors()) {
                    parse_failures.add();
                    warn("skipping " + isa + ":" + inst.name +
                         ": load-time verification failed:\n" +
                         report.renderText());
                    continue;
                }
            }
            sema.insts.push_back(std::move(result.sem));
        } catch (const ParseError &error) {
            parse_failures.add();
            warn("skipping " + isa + ":" + inst.name + ": " +
                 error.what());
        } catch (const AssertionError &error) {
            parse_failures.add();
            warn("skipping " + isa + ":" + inst.name + ": " +
                 error.what());
        }
    }
    span.setAttr("instructions", static_cast<int64_t>(sema.insts.size()));
    static metrics::Counter &parsed =
        metrics::counter("specs.parser.instructions");
    parsed.add(sema.insts.size());
    return cache.emplace(isa, std::move(sema)).first->second;
}

std::vector<CanonicalSemantics>
combinedSemantics(const std::vector<std::string> &isas)
{
    std::vector<CanonicalSemantics> all;
    for (const auto &isa : isas) {
        const IsaSemantics &sema = isaSemantics(isa);
        all.insert(all.end(), sema.insts.begin(), sema.insts.end());
    }
    return all;
}

} // namespace hydride
