#include "specs/spec_db.h"

#include "analysis/inst_verify.h"
#include "hir/canonicalize.h"
#include "observability/metrics.h"
#include "observability/trace.h"
#include "specs/arm_manual.h"
#include "specs/arm_parser.h"
#include "specs/hvx_manual.h"
#include "specs/hvx_parser.h"
#include "specs/x86_manual.h"
#include "specs/x86_parser.h"
#include "support/error.h"

#include <map>
#include <mutex>

namespace hydride {

const std::vector<std::string> &
builtinIsas()
{
    static const std::vector<std::string> isas = {"x86", "hvx", "arm"};
    return isas;
}

const IsaSpec &
isaManual(const std::string &isa)
{
    static std::map<std::string, IsaSpec> cache;
    static std::mutex mutex;
    std::lock_guard<std::mutex> lock(mutex);
    auto it = cache.find(isa);
    if (it != cache.end())
        return it->second;
    trace::TraceSpan span("specs.manual.generate");
    span.setAttr("isa", isa);
    IsaSpec spec;
    if (isa == "x86")
        spec = generateX86Manual();
    else if (isa == "hvx")
        spec = generateHvxManual();
    else if (isa == "arm")
        spec = generateArmManual();
    else
        fatal("unknown ISA `" + isa + "`");
    span.setAttr("instructions", static_cast<int64_t>(spec.insts.size()));
    return cache.emplace(isa, std::move(spec)).first->second;
}

SpecFunction
parseInst(const std::string &isa, const InstDef &inst)
{
    metrics::counter("specs.parser." + isa + ".instructions").add();
    if (isa == "x86")
        return parseX86Inst(inst);
    if (isa == "hvx")
        return parseHvxInst(inst);
    if (isa == "arm")
        return parseArmInst(inst);
    fatal("unknown ISA `" + isa + "`");
}

const IsaSemantics &
isaSemantics(const std::string &isa)
{
    static std::map<std::string, IsaSemantics> cache;
    static std::mutex mutex;
    std::lock_guard<std::mutex> lock(mutex);
    auto it = cache.find(isa);
    if (it != cache.end())
        return it->second;

    trace::TraceSpan span("specs.semantics.parse");
    span.setAttr("isa", isa);
    IsaSemantics sema;
    sema.isa = isa;
    const bool verify = analysis::loadTimeVerifyEnabled();
    for (const auto &inst : isaManual(isa).insts) {
        SpecFunction fn = parseInst(isa, inst);
        CanonicalizeResult result = canonicalize(fn);
        if (!result.ok) {
            fatal("canonicalization failed for " + isa + ":" + inst.name +
                  ": " + result.error);
        }
        if (verify) {
            // Debug-mode assertion: the cheap per-instruction passes
            // must come back clean on everything we hand downstream.
            analysis::DiagnosticReport report;
            analysis::verifyInstruction(
                result.sem, analysis::kWellFormed | analysis::kUndefined,
                {}, report);
            if (report.hasErrors()) {
                fatal("load-time verification failed for " + isa + ":" +
                      inst.name + ":\n" + report.renderText());
            }
        }
        sema.insts.push_back(std::move(result.sem));
    }
    span.setAttr("instructions", static_cast<int64_t>(sema.insts.size()));
    static metrics::Counter &parsed =
        metrics::counter("specs.parser.instructions");
    parsed.add(sema.insts.size());
    return cache.emplace(isa, std::move(sema)).first->second;
}

std::vector<CanonicalSemantics>
combinedSemantics(const std::vector<std::string> &isas)
{
    std::vector<CanonicalSemantics> all;
    for (const auto &isa : isas) {
        const IsaSemantics &sema = isaSemantics(isa);
        all.insert(all.end(), sema.insts.begin(), sema.insts.end());
    }
    return all;
}

} // namespace hydride
