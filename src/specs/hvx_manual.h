/**
 * @file
 * Programmatic stand-in for the Qualcomm Hexagon HVX Programmer's
 * Reference Manual: generates the HVX vector ISA as C-style
 * pseudocode text (the PRM's own notation) that the HVX parser
 * consumes. Covers both vector modes (64B: 512-bit and 128B:
 * 1024-bit registers, with double-vector pairs), including the
 * complex non-SIMD instructions Hydride exploits: vdmpy (2-way dot),
 * vrmpy (4-way dot), saturating arithmetic, vshuff/vdeal swizzles and
 * vcombine.
 */
#ifndef HYDRIDE_SPECS_HVX_MANUAL_H
#define HYDRIDE_SPECS_HVX_MANUAL_H

#include "specs/isa.h"

namespace hydride {

/** Generate the full HVX vendor specification document. */
IsaSpec generateHvxManual();

} // namespace hydride

#endif // HYDRIDE_SPECS_HVX_MANUAL_H
