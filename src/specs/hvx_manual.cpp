#include "specs/hvx_manual.h"

#include "support/strings.h"

#include <vector>

namespace hydride {

namespace {

/** Lane-type letter for an element width. */
const char *
laneType(int ew)
{
    switch (ew) {
      case 8: return "b";
      case 16: return "h";
      default: return "w";
    }
}

const char *
ulaneType(int ew)
{
    switch (ew) {
      case 8: return "ub";
      case 16: return "uh";
      default: return "uw";
    }
}

struct HvxEmitter
{
    IsaSpec &spec;
    int vw;              ///< Single-register width in bits.
    std::string suffix;  ///< "_64B" / "_128B" mode suffix.

    void
    inst(const std::string &name, const std::string &args, int out_w,
         int lat, const std::string &body)
    {
        std::string text = format("INST %s(%s) -> v%d LAT %d {\n",
                                  (name + suffix).c_str(), args.c_str(),
                                  out_w, lat);
        text += body;
        text += "}\n";
        spec.insts.push_back({name + suffix, text});
    }

    std::string
    loop(int n, const std::string &body) const
    {
        return format("for (i = 0; i < %d; i++) {\n%s}\n", n, body.c_str());
    }

    /** One-output-per-element instruction over `width`-bit registers. */
    void
    simd(const std::string &name, const std::string &args, int reg_w,
         int ew, int lat, const std::string &elem_expr, int out_w = 0,
         int out_ew = 0)
    {
        if (out_w == 0)
            out_w = reg_w;
        if (out_ew == 0)
            out_ew = ew;
        const int n = out_w / out_ew;
        inst(name, args, out_w, lat,
             loop(n, format("dst.%s[i] = %s;\n", laneType(out_ew),
                            elem_expr.c_str())));
    }

    std::string
    args2() const
    {
        return format("Vu: v%d, Vv: v%d", vw, vw);
    }

    std::string
    args1() const
    {
        return format("Vu: v%d", vw);
    }
};

/** `Vu.h[i]`-style element accessor string. */
std::string
el(const char *reg, int ew, const std::string &idx = "i")
{
    return format("%s.%s[%s]", reg, laneType(ew), idx.c_str());
}

} // namespace

IsaSpec
generateHvxManual()
{
    IsaSpec spec;
    spec.isa = "hvx";

    const int ews[] = {8, 16, 32};

    for (int vw : {512, 1024}) {
        HvxEmitter e{spec, vw, vw == 512 ? "_64B" : "_128B"};
        const std::string a2 = e.args2();
        const std::string a1 = e.args1();
        const std::string apair2 =
            format("Vuu: v%d, Vvv: v%d", 2 * vw, 2 * vw);

        for (int ew : ews) {
            const char *t = laneType(ew);
            const char *ut = ulaneType(ew);
            const std::string A = el("Vu", ew);
            const std::string B = el("Vv", ew);

            // Wrapping and saturating add/sub (single and double reg).
            e.simd(format("vadd%s", t), a2, vw, ew, 1, A + " + " + B);
            e.simd(format("vsub%s", t), a2, vw, ew, 1, A + " - " + B);
            e.simd(format("vadd%s_sat", t), a2, vw, ew, 1,
                   format("sat(sxt(%s, %d) + sxt(%s, %d), %d)", A.c_str(),
                          ew + 1, B.c_str(), ew + 1, ew));
            e.simd(format("vadd%s_sat", ut), a2, vw, ew, 1,
                   format("usat(zxt(%s, %d) + zxt(%s, %d), %d)", A.c_str(),
                          ew + 2, B.c_str(), ew + 2, ew));
            e.simd(format("vsub%s_sat", t), a2, vw, ew, 1,
                   format("sat(sxt(%s, %d) - sxt(%s, %d), %d)", A.c_str(),
                          ew + 1, B.c_str(), ew + 1, ew));
            e.simd(format("vsub%s_sat", ut), a2, vw, ew, 1,
                   format("usat(zxt(%s, %d) - zxt(%s, %d), %d)", A.c_str(),
                          ew + 2, B.c_str(), ew + 2, ew));

            // Double-vector (register pair) add/sub.
            const std::string Ap = el("Vuu", ew);
            const std::string Bp = el("Vvv", ew);
            e.simd(format("vadd%s_dv", t), apair2, 2 * vw, ew, 1,
                   Ap + " + " + Bp);
            e.simd(format("vsub%s_dv", t), apair2, 2 * vw, ew, 1,
                   Ap + " - " + Bp);
            e.simd(format("vadd%s_sat_dv", t), apair2, 2 * vw, ew, 1,
                   format("sat(sxt(%s, %d) + sxt(%s, %d), %d)", Ap.c_str(),
                          ew + 1, Bp.c_str(), ew + 1, ew));
            e.simd(format("vsub%s_sat_dv", t), apair2, 2 * vw, ew, 1,
                   format("sat(sxt(%s, %d) - sxt(%s, %d), %d)", Ap.c_str(),
                          ew + 1, Bp.c_str(), ew + 1, ew));

            // Averages: rounding signed/unsigned, and negated average.
            e.simd(format("vavg%s", t), a2, vw, ew, 1,
                   format("avg(%s, %s)", A.c_str(), B.c_str()));
            e.simd(format("vavg%s", ut), a2, vw, ew, 1,
                   format("avgu(%s, %s)", A.c_str(), B.c_str()));
            e.simd(format("vnavg%s", t), a2, vw, ew, 1,
                   format("trunc((sxt(%s, %d) - sxt(%s, %d)) >> 1, %d)",
                          A.c_str(), ew + 1, B.c_str(), ew + 1, ew));

            // Absolute difference and absolute value.
            e.simd(format("vabsdiff%s", t), a2, vw, ew, 1,
                   format("trunc(abs(sxt(%s, %d) - sxt(%s, %d)), %d)",
                          A.c_str(), ew + 1, B.c_str(), ew + 1, ew));
            e.simd(format("vabsdiff%s", ut), a2, vw, ew, 1,
                   format("trunc(abs(zxt(%s, %d) - zxt(%s, %d)), %d)",
                          A.c_str(), ew + 1, B.c_str(), ew + 1, ew));
            e.simd(format("vabs%s", t), a1, vw, ew, 1,
                   format("abs(%s)", A.c_str()));

            // Min / max.
            e.simd(format("vmin%s", t), a2, vw, ew, 1,
                   format("min(%s, %s)", A.c_str(), B.c_str()));
            e.simd(format("vmax%s", t), a2, vw, ew, 1,
                   format("max(%s, %s)", A.c_str(), B.c_str()));
            e.simd(format("vmin%s", ut), a2, vw, ew, 1,
                   format("minu(%s, %s)", A.c_str(), B.c_str()));
            e.simd(format("vmax%s", ut), a2, vw, ew, 1,
                   format("maxu(%s, %s)", A.c_str(), B.c_str()));

            // Shifts: register forms mask the amount (the notorious
            // HVX semantics detail that Table 2 shows Rake got wrong);
            // immediate forms take the amount as given.
            e.simd(format("vasl%s", t), a2, vw, ew, 1,
                   format("%s << (%s & %d)", A.c_str(), B.c_str(), ew - 1));
            e.simd(format("vasr%s", t), a2, vw, ew, 1,
                   format("%s >> (%s & %d)", A.c_str(), B.c_str(), ew - 1));
            e.simd(format("vlsr%s", t), a2, vw, ew, 1,
                   format("%s >>> (%s & %d)", A.c_str(), B.c_str(), ew - 1));
            const std::string aimm = format("Vu: v%d, Rt: imm", vw);
            e.simd(format("vasl%s_imm", t), aimm, vw, ew, 1,
                   format("%s << Rt", A.c_str()));
            e.simd(format("vasr%s_imm", t), aimm, vw, ew, 1,
                   format("%s >> Rt", A.c_str()));
            e.simd(format("vlsr%s_imm", t), aimm, vw, ew, 1,
                   format("%s >>> Rt", A.c_str()));
            // Rounding arithmetic shift right.
            e.simd(format("vasr%s_rnd", t), aimm, vw, ew, 1,
                   format("trunc(((sxt(%s, %d) >> Rt) + 1) >> 1, %d)",
                          A.c_str(), ew + 1, ew));
        }

        // Element-wise multiplies (16- and 32-bit lanes).
        for (int ew : {16, 32}) {
            const char *t = laneType(ew);
            const std::string A = el("Vu", ew);
            const std::string B = el("Vv", ew);
            e.simd(format("vmpyi%s", t), a2, vw, ew, 4, A + " * " + B);
            e.simd(format("vmpyi%s_acc", t),
                   format("Vx: v%d, Vu: v%d, Vv: v%d", vw, vw, vw), vw, ew,
                   4,
                   format("%s + %s * %s", el("Vx", ew).c_str(), A.c_str(),
                          B.c_str()));
            e.simd(format("vmpye%s", t), a2, vw, ew, 4,
                   format("(sxt(%s, %d) * sxt(%s, %d))[%d:%d]", A.c_str(),
                          2 * ew, B.c_str(), 2 * ew, 2 * ew - 1, ew));
            e.simd(format("vmpye%s_u", t), a2, vw, ew, 4,
                   format("(zxt(%s, %d) * zxt(%s, %d))[%d:%d]", A.c_str(),
                          2 * ew, B.c_str(), 2 * ew, 2 * ew - 1, ew));
        }

        // Whole-register logic.
        {
            const int w = vw - 1;
            e.inst("vand", a2, vw, 1,
                   format("dst[%d:0] = Vu[%d:0] & Vv[%d:0];\n", w, w, w));
            e.inst("vor", a2, vw, 1,
                   format("dst[%d:0] = Vu[%d:0] | Vv[%d:0];\n", w, w, w));
            e.inst("vxor", a2, vw, 1,
                   format("dst[%d:0] = Vu[%d:0] ^ Vv[%d:0];\n", w, w, w));
            e.inst("vnot", a1, vw, 1,
                   format("dst[%d:0] = ~Vu[%d:0];\n", w, w));
        }

        // vcombine: pair output Vu:Vv (Vv is the low half).
        for (int ew : {8}) {
            const int n = vw / ew;
            std::string body;
            body += e.loop(n, format("dst.%s[i] = %s;\n", laneType(ew),
                                     el("Vv", ew).c_str()));
            body += e.loop(n, format("dst.%s[%d + i] = %s;\n", laneType(ew),
                                     n, el("Vu", ew).c_str()));
            e.inst("vcombine", a2, 2 * vw, 1, body);
        }

        // Pair halves: extract the low/high vector of a pair.
        {
            const int n = vw / 8;
            const std::string pair_args = format("Vuu: v%d", 2 * vw);
            // Pair halves are register aliases on Hexagon: free.
            e.inst("vlo", pair_args, vw, 0,
                   e.loop(n, "dst.b[i] = Vuu.b[i];\n"));
            e.inst("vhi", pair_args, vw, 0,
                   e.loop(n, format("dst.b[i] = Vuu.b[%d + i];\n", n)));
        }

        // vshuffe / vshuffo: even (odd) elements of both inputs.
        for (int ew : {8, 16}) {
            const char *t = laneType(ew);
            const int n = vw / ew / 2;
            for (int odd = 0; odd < 2; ++odd) {
                std::string body = e.loop(
                    n, format("dst.%s[2*i] = Vv.%s[2*i + %d];\n"
                              "dst.%s[2*i + 1] = Vu.%s[2*i + %d];\n",
                              t, t, odd, t, t, odd));
                e.inst(format("vshuff%s%s", odd ? "o" : "e", t), a2, vw, 1,
                       body);
            }
        }

        // vshuff: full interleave of two vectors into a pair.
        // vdeal: full deinterleave of two vectors into a pair.
        for (int ew : ews) {
            const char *t = laneType(ew);
            const int n = vw / ew;
            std::string body = e.loop(
                n, format("dst.%s[2*i] = %s;\ndst.%s[2*i + 1] = %s;\n", t,
                          el("Vv", ew).c_str(), t, el("Vu", ew).c_str()));
            e.inst(format("vshuff%s", t), a2, 2 * vw, 1, body);

            std::string deal;
            deal += e.loop(n / 2, format("dst.%s[i] = Vv.%s[2*i];\n", t, t));
            deal += e.loop(n / 2, format("dst.%s[%d + i] = Vu.%s[2*i];\n", t,
                                         n / 2, t));
            deal += e.loop(n / 2, format("dst.%s[%d + i] = Vv.%s[2*i + 1];\n",
                                         t, n, t));
            deal += e.loop(
                n / 2, format("dst.%s[%d + i] = Vu.%s[2*i + 1];\n", t,
                              n + n / 2, t));
            e.inst(format("vdeal%s", t), a2, 2 * vw, 1, deal);
        }

        // Group-interleave (vshuffvdd-style, fixed group sizes): the
        // instruction Figure 5 of the paper builds a 2x2 transpose
        // from.
        for (int ew : {8, 16}) {
            const char *t = laneType(ew);
            const int n = vw / ew;
            for (int group : {2, 4}) {
                std::string inner;
                for (int g = 0; g < group; ++g) {
                    inner += format("dst.%s[%d*i + %d] = Vv.%s[%d*i + %d];\n",
                                    t, 2 * group, g, t, group, g);
                }
                for (int g = 0; g < group; ++g) {
                    inner += format(
                        "dst.%s[%d*i + %d] = Vu.%s[%d*i + %d];\n", t,
                        2 * group, group + g, t, group, g);
                }
                e.inst(format("vshuffvdd_%d%s", group, t), a2, 2 * vw, 1,
                       e.loop(n / group, inner));
            }
        }

        // Narrowing packs: even/odd selection and saturating packs.
        for (int ew : {16, 32}) {
            const int out_ew = ew / 2;
            const char *ot = laneType(out_ew);
            const int n = vw / ew;
            for (const char *which : {"e", "o"}) {
                std::string lo_expr =
                    which[0] == 'e'
                        ? format("trunc(%s, %d)", el("Vv", ew).c_str(),
                                 out_ew)
                        : format("(%s)[%d:%d]", el("Vv", ew).c_str(), ew - 1,
                                 out_ew);
                std::string hi_expr =
                    which[0] == 'e'
                        ? format("trunc(%s, %d)", el("Vu", ew).c_str(),
                                 out_ew)
                        : format("(%s)[%d:%d]", el("Vu", ew).c_str(), ew - 1,
                                 out_ew);
                std::string body;
                body += e.loop(n, format("dst.%s[i] = %s;\n", ot,
                                         lo_expr.c_str()));
                body += e.loop(n, format("dst.%s[%d + i] = %s;\n", ot, n,
                                         hi_expr.c_str()));
                e.inst(format("vpack%s%s", which, ot), a2, vw, 1, body);
            }
            for (int uns = 0; uns < 2; ++uns) {
                const char *sat = uns ? "usat" : "sat";
                std::string body;
                body += e.loop(n, format("dst.%s[i] = %s(%s, %d);\n", ot,
                                         sat, el("Vv", ew).c_str(), out_ew));
                body += e.loop(n,
                               format("dst.%s[%d + i] = %s(%s, %d);\n", ot, n,
                                      sat, el("Vu", ew).c_str(), out_ew));
                e.inst(format("vpack%s%s_sat", uns ? ulaneType(out_ew) : ot,
                              ot),
                       a2, vw, 1, body);
            }
        }

        // Widening unpacks: single register to pair.
        for (int ew : {8, 16}) {
            const int out_ew = 2 * ew;
            const char *ot = laneType(out_ew);
            const int n = vw / ew;
            e.inst(format("vunpack%s", laneType(ew)), a1, 2 * vw, 1,
                   e.loop(n, format("dst.%s[i] = sxt(%s, %d);\n", ot,
                                    el("Vu", ew).c_str(), out_ew)));
            e.inst(format("vunpack%s", ulaneType(ew)), a1, 2 * vw, 1,
                   e.loop(n, format("dst.%s[i] = zxt(%s, %d);\n", ot,
                                    el("Vu", ew).c_str(), out_ew)));
        }

        // Narrowing shift with saturation (vasr variants).
        for (int ew : {16, 32}) {
            const int out_ew = ew / 2;
            const int n = vw / ew;
            for (int uns = 0; uns < 2; ++uns) {
                const char *sat = uns ? "usat" : "sat";
                const char *ot = uns ? ulaneType(out_ew) : laneType(out_ew);
                std::string body;
                body += e.loop(
                    n, format("dst.%s[i] = %s(%s >> Rt, %d);\n",
                              laneType(out_ew), sat,
                              el("Vvv", ew, "i").c_str(), out_ew));
                body += e.loop(
                    n, format("dst.%s[%d + i] = %s(%s >> Rt, %d);\n",
                              laneType(out_ew), n, sat,
                              format("Vvv.%s[%d + i]", laneType(ew), n)
                                  .c_str(),
                              out_ew));
                e.inst(format("vasr%s%s_sat", laneType(ew), ot),
                       format("Vvv: v%d, Rt: imm", 2 * vw), vw, 2, body);
            }
        }

        // vdmpy: 2-way dot product of halfwords into words, with
        // accumulating and saturating variants (mirrors x86 madd /
        // dpwssd at the semantic level).
        {
            const int n = vw / 32;
            const std::string dot =
                "sxt(Vu.h[2*i], 32) * sxt(Vv.h[2*i], 32) + "
                "sxt(Vu.h[2*i + 1], 32) * sxt(Vv.h[2*i + 1], 32)";
            e.simd("vdmpyh", a2, vw, 32, 4, dot, vw, 32);
            e.simd("vdmpyh_acc",
                   format("Vx: v%d, Vu: v%d, Vv: v%d", vw, vw, vw), vw, 32,
                   4, format("Vx.w[i] + (%s)", dot.c_str()));
            e.simd("vdmpyh_sat", a2, vw, 32, 4,
                   format("sat(sxt(Vu.h[2*i], 33) * sxt(Vv.h[2*i], 33) + "
                          "sxt(Vu.h[2*i + 1], 33) * sxt(Vv.h[2*i + 1], 33), "
                          "32)"));
            e.simd("vdmpyh_acc_sat",
                   format("Vx: v%d, Vu: v%d, Vv: v%d", vw, vw, vw), vw, 32,
                   4,
                   format("sat(sxt(Vx.w[i], 34) + sxt(%s, 34), 32)",
                          dot.c_str()));
            (void)n;
        }

        // vrmpy: 4-way byte dot product into words.
        {
            std::string dot;
            for (int k = 0; k < 4; ++k) {
                if (k)
                    dot += " + ";
                dot += format("zxt(Vu.b[4*i + %d], 32) * sxt(Vv.b[4*i + %d], "
                              "32)",
                              k, k);
            }
            std::string sdot;
            for (int k = 0; k < 4; ++k) {
                if (k)
                    sdot += " + ";
                sdot += format("sxt(Vu.b[4*i + %d], 32) * sxt(Vv.b[4*i + "
                               "%d], 32)",
                               k, k);
            }
            e.simd("vrmpyub", a2, vw, 32, 4, dot);
            e.simd("vrmpyb", a2, vw, 32, 4, sdot);
            e.simd("vrmpyub_acc",
                   format("Vx: v%d, Vu: v%d, Vv: v%d", vw, vw, vw), vw, 32,
                   4, format("Vx.w[i] + (%s)", dot.c_str()));
            e.simd("vrmpyb_acc",
                   format("Vx: v%d, Vu: v%d, Vv: v%d", vw, vw, vw), vw, 32,
                   4, format("Vx.w[i] + (%s)", sdot.c_str()));
        }

        // vror: rotate the whole vector right by Rt bytes.
        {
            const int n = vw / 8;
            e.inst("vror", format("Vu: v%d, Rt: imm", vw), vw, 1,
                   e.loop(n, format("dst.b[i] = Vu.b[(i + Rt) %% %d];\n",
                                    n)));
        }

        // Per-element population count (halfwords).
        e.simd("vpopcounth", a1, vw, 16, 2,
               format("popcount(%s)", el("Vu", 16).c_str()));
    }

    return spec;
}

} // namespace hydride
