/**
 * @file
 * Shared lexer and parser scaffolding for the three ISA pseudocode
 * dialects. Each dialect has its own recursive-descent parser (as in
 * the paper, which implemented one parser per vendor manual), but all
 * three share this tokenizer and the typed-expression helpers.
 */
#ifndef HYDRIDE_SPECS_PARSER_COMMON_H
#define HYDRIDE_SPECS_PARSER_COMMON_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hir/expr.h"

namespace hydride {

/** Token categories produced by the shared lexer. */
enum class TokKind {
    Ident,   ///< Identifiers and keywords.
    Number,  ///< Decimal integer literal.
    Punct,   ///< Operators and punctuation (possibly multi-char).
    End,     ///< End of input.
};

/** One lexed token with source location for diagnostics. */
struct Token
{
    TokKind kind;
    std::string text;
    int64_t number = 0;
    int line = 1;
};

/** Tokenize pseudocode. Comment syntax: `//` to end of line. */
std::vector<Token> lexPseudocode(const std::string &text);

/**
 * A typed expression produced by the dialect parsers: either an Int
 * expression or a BV expression with a statically known concrete
 * width (the parsers run the bitwidth type inference the paper's
 * Hydride IR generator performs).
 */
struct TypedExpr
{
    ExprPtr expr;
    bool is_bv = false;
    int width = 0; ///< Valid when is_bv.
};

/**
 * Token cursor with the error handling and symbol-table plumbing all
 * three dialect parsers share. Parsers subclass or embed this.
 */
class TokenCursor
{
  public:
    TokenCursor(std::vector<Token> tokens, std::string source_name);

    const Token &peek(int ahead = 0) const;
    Token take();

    /** Consume a token matching `text`, else fail with a diagnostic. */
    Token expect(const std::string &text);

    /** Consume an identifier token, else fail. */
    std::string expectIdent();

    /** Consume a number token, else fail. */
    int64_t expectNumber();

    /** True (and consumes) if the next token is `text`. */
    bool accept(const std::string &text);

    /** True if the next token is `text` (no consumption). */
    bool lookingAt(const std::string &text) const;

    /** Raise a parse error mentioning the source and line. */
    [[noreturn]] void fail(const std::string &message) const;

    /** The "<dialect>:<instruction>" unit name for diagnostics. */
    const std::string &sourceName() const { return source_name_; }

  private:
    std::vector<Token> tokens_;
    size_t pos_ = 0;
    std::string source_name_;
};

/**
 * Symbol table used while parsing one instruction body: bitvector
 * arguments (with widths), integer immediates, loop variables and
 * integer lets.
 */
struct ParseScope
{
    struct BVSym
    {
        int index;
        int width;
    };
    std::map<std::string, BVSym> bv_args;
    std::map<std::string, bool> int_vars; ///< Loop vars, lets, immediates.

    bool isBV(const std::string &name) const
    {
        return bv_args.count(name) != 0;
    }
    bool isInt(const std::string &name) const
    {
        return int_vars.count(name) != 0;
    }
};

/**
 * Shared typed-expression parser: precedence climbing over the
 * operator set all three dialects use (`?:`, `| ^ &`, comparisons,
 * `<< >> >>>`, `+ -`, `* / %`, unary `- ~`), with bottom-up concrete
 * bitwidth inference. Dialects subclass and implement parsePrimary()
 * (identifiers, slices / lane accessors, intrinsic functions).
 */
class ExprParserBase
{
  public:
    ExprParserBase(std::vector<Token> tokens, std::string source_name)
        : cur_(std::move(tokens), std::move(source_name))
    {
    }
    virtual ~ExprParserBase() = default;

  protected:
    /** Dialect hook: primary expression including dialect postfixes. */
    virtual TypedExpr parsePrimary() = 0;

    TypedExpr parseExpr() { return parseTernary(); }

    /**
     * Parse one expression and tag every resulting node with the
     * source line of its first token (vendor pseudocode is one
     * statement per line, so statement granularity is exact). The
     * dialect parsers call this at statement level so verifier
     * diagnostics can point at the offending pseudocode line.
     */
    TypedExpr parseLocatedExpr();

    // Precedence levels.
    TypedExpr parseTernary();
    TypedExpr parseOr();
    TypedExpr parseXor();
    TypedExpr parseAnd();
    TypedExpr parseCmp();
    TypedExpr parseShift();
    TypedExpr parseAdd();
    TypedExpr parseMul();
    TypedExpr parseUnary();

    // Typed-combination helpers shared by the dialects.
    void requireInt(const TypedExpr &expr, const std::string &what);
    int constOf(const ExprPtr &expr, const std::string &what);
    int sliceWidth(const ExprPtr &hi, const ExprPtr &lo);
    TypedExpr coerceLiteral(TypedExpr value, int width);
    TypedExpr combineBV(BVBinOp op, TypedExpr lhs, TypedExpr rhs);
    TypedExpr makeCompare(const std::string &op, TypedExpr lhs,
                          TypedExpr rhs, bool unsigned_cmp = false);

    /** Intrinsic-function dispatch shared by every dialect: the
     *  dialect maps its surface name onto one of these and calls. */
    TypedExpr callCast(BVCastOp op, std::vector<TypedExpr> &args,
                       const std::string &name);
    TypedExpr callBin(BVBinOp op, std::vector<TypedExpr> &args,
                      const std::string &name);
    TypedExpr callUn(BVUnOp op, std::vector<TypedExpr> &args,
                     const std::string &name);

    TokenCursor cur_;
    ParseScope scope_;
};

} // namespace hydride

#endif // HYDRIDE_SPECS_PARSER_COMMON_H
