/**
 * @file
 * Vendor ISA specification types.
 *
 * An `IsaSpec` is what a "vendor manual" provides: a list of
 * instruction definitions, each carrying the vendor's pseudocode text
 * in that vendor's dialect. Hydride's pipeline consumes only this
 * text; the programmatic generators in this directory stand in for
 * the Intel Intrinsics Guide, the Qualcomm HVX Programmer's Reference
 * Manual, and the ARM Developer intrinsics database (see DESIGN.md,
 * substitution table).
 */
#ifndef HYDRIDE_SPECS_ISA_H
#define HYDRIDE_SPECS_ISA_H

#include <string>
#include <vector>

namespace hydride {

/** One vendor instruction definition: name plus pseudocode text. */
struct InstDef
{
    std::string name;
    /** Dialect-specific pseudocode, including the signature header. */
    std::string pseudocode;
};

/** A complete vendor ISA specification document. */
struct IsaSpec
{
    /** ISA identifier: "x86", "hvx" or "arm". */
    std::string isa;
    std::vector<InstDef> insts;

    /** Render the whole document as one manual-like text blob. */
    std::string renderManual() const;
};

} // namespace hydride

#endif // HYDRIDE_SPECS_ISA_H
