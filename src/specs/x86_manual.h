/**
 * @file
 * Programmatic stand-in for the Intel Intrinsics Guide: generates the
 * x86 (SSE2/AVX/AVX2/AVX-512-style) instruction set as vendor-style
 * pseudocode text, which the x86 parser then consumes. The generated
 * set covers scalar ALU operations and vector families over 128/256/
 * 512-bit registers with 8/16/32/64-bit elements, including masked
 * (AVX-512 `mask`/`maskz`) variants, swizzles (unpack/pack/align/
 * rotate), converts, and the complex non-SIMD instructions the paper
 * highlights (madd, maddubs, dpwssd(s), dpbusd(s), sad, hadd).
 */
#ifndef HYDRIDE_SPECS_X86_MANUAL_H
#define HYDRIDE_SPECS_X86_MANUAL_H

#include "specs/isa.h"

namespace hydride {

/** Generate the full x86 vendor specification document. */
IsaSpec generateX86Manual();

} // namespace hydride

#endif // HYDRIDE_SPECS_X86_MANUAL_H
