#include "specs/x86_manual.h"

#include "support/strings.h"

#include <functional>
#include <vector>

namespace hydride {

namespace {

/** Vector register configurations. */
struct VecCfg
{
    int vw;
    const char *prefix;
};

const VecCfg kVecs[] = {{128, "_mm"}, {256, "_mm256"}, {512, "_mm512"}};

std::string
epi(int ew)
{
    return format("epi%d", ew);
}

std::string
epu(int ew)
{
    return format("epu%d", ew);
}

/** Slice string `name[i+W-1:i]` given a precomputed base index var. */
std::string
sl(const std::string &reg, const std::string &base, int width)
{
    return format("%s[%s+%d:%s]", reg.c_str(), base.c_str(), width - 1,
                  base.c_str());
}

/** Emit one instruction into the spec. */
void
emit(IsaSpec &spec, const std::string &name, const std::string &text)
{
    spec.insts.push_back({name, text});
}

/**
 * Emit a SIMD one-output-per-element instruction:
 * `expr` computes the element from `i` (bit index of the element).
 */
void
emitSimd(IsaSpec &spec, const std::string &name, int vw, int ew,
         const std::string &args, int out_w, int lat,
         const std::string &expr, int out_ew = 0)
{
    if (out_ew == 0)
        out_ew = ew;
    const int n = out_w / out_ew;
    std::string text;
    text += format("DEFINE %s(%s) -> bit[%d] LAT %d\n", name.c_str(),
                   args.c_str(), out_w, lat);
    text += format("FOR j := 0 to %d\n", n - 1);
    text += format("i := j*%d\n", out_ew);
    text += format("dst[i+%d:i] := %s\n", out_ew - 1, expr.c_str());
    text += "ENDFOR\nENDDEF\n";
    emit(spec, name, text);
    (void)vw;
    (void)ew;
}

std::string
vecArgs2(int vw)
{
    return format("a: bit[%d], b: bit[%d]", vw, vw);
}

/** The standard two-operand element accessors. */
struct ElemOps
{
    std::string a, b;
    ElemOps(int ew)
        : a(sl("a", "i", ew)), b(sl("b", "i", ew))
    {
    }
};

// ---- Compute family bodies -------------------------------------------------
//
// IMPORTANT: the expression *shapes* here are deliberately mirrored by
// the HVX and ARM manual generators (same widening margins, operand
// order and operator choice) because cross-ISA equivalence-class
// merging depends on the canonicalized semantics matching structurally
// after constant extraction. See DESIGN.md "Key internal design
// points". Notation: W = element width.

std::string
bodyAdd(int ew)
{
    ElemOps e(ew);
    return e.a + " + " + e.b;
}

std::string
bodySub(int ew)
{
    ElemOps e(ew);
    return e.a + " - " + e.b;
}

std::string
bodyMullo(int ew)
{
    ElemOps e(ew);
    return e.a + " * " + e.b;
}

std::string
bodyMulhi(int ew, bool is_signed)
{
    ElemOps e(ew);
    const char *ext = is_signed ? "SignExtend" : "ZeroExtend";
    return format("(%s(%s, %d) * %s(%s, %d))[%d:%d]", ext, e.a.c_str(),
                  2 * ew, ext, e.b.c_str(), 2 * ew, 2 * ew - 1, ew);
}

std::string
bodyMulhrs(int ew)
{
    ElemOps e(ew);
    return format(
        "Truncate((((SignExtend(%s, %d) * SignExtend(%s, %d)) >> %d) + 1) "
        ">> 1, %d)",
        e.a.c_str(), 2 * ew, e.b.c_str(), 2 * ew, ew - 2, ew);
}

std::string
bodyAddSatS(int ew)
{
    ElemOps e(ew);
    return format("Saturate(SignExtend(%s, %d) + SignExtend(%s, %d), %d)",
                  e.a.c_str(), ew + 1, e.b.c_str(), ew + 1, ew);
}

std::string
bodyAddSatU(int ew)
{
    ElemOps e(ew);
    return format("SaturateU(ZeroExtend(%s, %d) + ZeroExtend(%s, %d), %d)",
                  e.a.c_str(), ew + 2, e.b.c_str(), ew + 2, ew);
}

std::string
bodySubSatS(int ew)
{
    ElemOps e(ew);
    return format("Saturate(SignExtend(%s, %d) - SignExtend(%s, %d), %d)",
                  e.a.c_str(), ew + 1, e.b.c_str(), ew + 1, ew);
}

std::string
bodySubSatU(int ew)
{
    ElemOps e(ew);
    return format("SaturateU(ZeroExtend(%s, %d) - ZeroExtend(%s, %d), %d)",
                  e.a.c_str(), ew + 2, e.b.c_str(), ew + 2, ew);
}

std::string
bodyFn2(const char *fn, int ew)
{
    ElemOps e(ew);
    return format("%s(%s, %s)", fn, e.a.c_str(), e.b.c_str());
}

std::string
bodyAbs(int ew)
{
    ElemOps e(ew);
    return format("ABS(%s)", e.a.c_str());
}

std::string
bodyCmp(const char *op, int ew)
{
    ElemOps e(ew);
    return format("%s %s %s ? ALLONES(%d) : ZEROS(%d)", e.a.c_str(), op,
                  e.b.c_str(), ew, ew);
}

std::string
bodyShiftImm(const char *op, int ew)
{
    ElemOps e(ew);
    return format("%s %s imm", e.a.c_str(), op);
}

std::string
bodyShiftVar(const char *op, int ew)
{
    ElemOps e(ew);
    return format("%s %s %s", e.a.c_str(), op, e.b.c_str());
}

std::string
bodyRotImm(int ew)
{
    ElemOps e(ew);
    return format("(%s << imm) | (%s >>> (%d - imm))", e.a.c_str(),
                  e.a.c_str(), ew);
}

/** Wrap a compute body into an AVX-512 merge-masked element. */
std::string
masked(const std::string &body, int ew)
{
    return format("k[j] ? (%s) : %s", body.c_str(), sl("src", "i", ew).c_str());
}

/** Wrap a compute body into an AVX-512 zero-masked element. */
std::string
maskedZ(const std::string &body)
{
    return format("k[j] ? (%s) : 0", body.c_str());
}

} // namespace

IsaSpec
generateX86Manual()
{
    IsaSpec spec;
    spec.isa = "x86";

    const int all_ew[] = {8, 16, 32, 64};
    const int small_ew[] = {8, 16};
    const int mid_ew[] = {16, 32};
    const int wide_ew[] = {16, 32, 64};
    const int rot_ew[] = {32, 64};

    // A compute family: name stem, applicable element widths, latency,
    // body builder, and whether AVX-512 masked variants exist.
    struct Family
    {
        std::string stem;
        std::vector<int> ews;
        int lat;
        std::function<std::string(int)> body;
        bool maskable;
        bool unsigned_suffix;
        int arity = 2;
    };

    std::vector<Family> families = {
        {"add", {all_ew, all_ew + 4}, 1, bodyAdd, true, false},
        {"sub", {all_ew, all_ew + 4}, 1, bodySub, true, false},
        {"adds", {small_ew, small_ew + 2}, 1, bodyAddSatS, true, false},
        {"adds", {small_ew, small_ew + 2}, 1, bodyAddSatU, true, true},
        {"subs", {small_ew, small_ew + 2}, 1, bodySubSatS, true, false},
        {"subs", {small_ew, small_ew + 2}, 1, bodySubSatU, true, true},
        {"mullo", {wide_ew, wide_ew + 3}, 5, bodyMullo, true, false},
        {"mulhi", {16}, 5, [](int ew) { return bodyMulhi(ew, true); }, true,
         false},
        {"mulhi", {16}, 5, [](int ew) { return bodyMulhi(ew, false); }, true,
         true},
        {"mulhrs", {16}, 5, bodyMulhrs, true, false},
        {"min", {all_ew, all_ew + 4}, 1,
         [](int ew) { return bodyFn2("MIN", ew); }, true, false},
        {"max", {all_ew, all_ew + 4}, 1,
         [](int ew) { return bodyFn2("MAX", ew); }, true, false},
        {"min", {all_ew, all_ew + 4}, 1,
         [](int ew) { return bodyFn2("MINU", ew); }, true, true},
        {"max", {all_ew, all_ew + 4}, 1,
         [](int ew) { return bodyFn2("MAXU", ew); }, true, true},
        {"avg", {small_ew, small_ew + 2}, 1,
         [](int ew) { return bodyFn2("AVGU", ew); }, true, true},
        {"abs", {8, 16, 32}, 1, bodyAbs, true, false, 1},
        {"cmpeq", {all_ew, all_ew + 4}, 1,
         [](int ew) { return bodyCmp("==", ew); }, false, false},
        {"cmpgt", {all_ew, all_ew + 4}, 1,
         [](int ew) { return bodyCmp(">", ew); }, false, false},
    };

    for (const auto &vec : kVecs) {
        for (const auto &fam : families) {
            for (int ew : fam.ews) {
                const std::string suffix =
                    fam.unsigned_suffix ? epu(ew) : epi(ew);
                const std::string name =
                    format("%s_%s_%s", vec.prefix, fam.stem.c_str(),
                           suffix.c_str());
                const std::string plain_args =
                    fam.arity == 2 ? vecArgs2(vec.vw)
                                   : format("a: bit[%d]", vec.vw);
                emitSimd(spec, name, vec.vw, ew, plain_args, vec.vw,
                         fam.lat, fam.body(ew));
                if (fam.maskable) {
                    const int n = vec.vw / ew;
                    emitSimd(spec,
                             format("%s_mask_%s_%s", vec.prefix,
                                    fam.stem.c_str(), suffix.c_str()),
                             vec.vw, ew,
                             format("src: bit[%d], k: bit[%d], %s", vec.vw,
                                    n, plain_args.c_str()),
                             vec.vw, fam.lat, masked(fam.body(ew), ew));
                    emitSimd(spec,
                             format("%s_maskz_%s_%s", vec.prefix,
                                    fam.stem.c_str(), suffix.c_str()),
                             vec.vw, ew,
                             format("k: bit[%d], %s", n,
                                    plain_args.c_str()),
                             vec.vw, fam.lat, maskedZ(fam.body(ew)));
                }
            }
        }

        // Immediate and variable shifts, and rotates.
        struct ShiftFam
        {
            const char *stem;
            const char *op;
            bool variable;
        };
        const ShiftFam shifts[] = {
            {"slli", "<<", false}, {"srli", ">>>", false},
            {"srai", ">>", false}, {"sllv", "<<", true},
            {"srlv", ">>>", true}, {"srav", ">>", true},
        };
        for (const auto &sh : shifts) {
            for (int ew : wide_ew) {
                const std::string name = format("%s_%s_%s", vec.prefix,
                                                sh.stem, epi(ew).c_str());
                const std::string body = sh.variable
                                             ? bodyShiftVar(sh.op, ew)
                                             : bodyShiftImm(sh.op, ew);
                const std::string args =
                    sh.variable
                        ? vecArgs2(vec.vw)
                        : format("a: bit[%d], imm: imm", vec.vw);
                emitSimd(spec, name, vec.vw, ew, args, vec.vw,
                         sh.variable ? 2 : 1, body);
                // Masked variants.
                const int n = vec.vw / ew;
                const std::string mbase = sh.variable
                                              ? vecArgs2(vec.vw)
                                              : format("a: bit[%d], imm: imm",
                                                       vec.vw);
                emitSimd(spec,
                         format("%s_mask_%s_%s", vec.prefix, sh.stem,
                                epi(ew).c_str()),
                         vec.vw, ew,
                         format("src: bit[%d], k: bit[%d], %s", vec.vw, n,
                                mbase.c_str()),
                         vec.vw, sh.variable ? 2 : 1, masked(body, ew));
            }
        }
        for (int ew : rot_ew) {
            const int n = vec.vw / ew;
            const std::string mask_pre =
                format("src: bit[%d], k: bit[%d], ", vec.vw, n);
            // Immediate rotates (AVX-512 vprold/vprord family).
            for (const char *dir : {"rol", "ror"}) {
                const std::string body =
                    dir[2] == 'l'
                        ? bodyRotImm(ew)
                        : format("(%s >>> imm) | (%s << (%d - imm))",
                                 sl("a", "i", ew).c_str(),
                                 sl("a", "i", ew).c_str(), ew);
                const std::string args =
                    format("a: bit[%d], imm: imm", vec.vw);
                emitSimd(spec,
                         format("%s_%s_%s", vec.prefix, dir, epi(ew).c_str()),
                         vec.vw, ew, args, vec.vw, 1, body);
                emitSimd(spec,
                         format("%s_mask_%s_%s", vec.prefix, dir,
                                epi(ew).c_str()),
                         vec.vw, ew, mask_pre + args, vec.vw, 1,
                         masked(body, ew));
            }
            // Variable rotates (vprolv/vprorv).
            for (const char *dir : {"rolv", "rorv"}) {
                const std::string amt =
                    format("(%s & %d)", sl("b", "i", ew).c_str(), ew - 1);
                const std::string body =
                    dir[2] == 'l'
                        ? format("(%s << %s) | (%s >>> (%d - %s))",
                                 sl("a", "i", ew).c_str(), amt.c_str(),
                                 sl("a", "i", ew).c_str(), ew, amt.c_str())
                        : format("(%s >>> %s) | (%s << (%d - %s))",
                                 sl("a", "i", ew).c_str(), amt.c_str(),
                                 sl("a", "i", ew).c_str(), ew, amt.c_str());
                emitSimd(spec,
                         format("%s_%s_%s", vec.prefix, dir, epi(ew).c_str()),
                         vec.vw, ew, vecArgs2(vec.vw), vec.vw, 1, body);
                emitSimd(spec,
                         format("%s_mask_%s_%s", vec.prefix, dir,
                                epi(ew).c_str()),
                         vec.vw, ew, mask_pre + vecArgs2(vec.vw), vec.vw, 1,
                         masked(body, ew));
            }
        }

        // Shift by the scalar count held in the low word of a second
        // vector (psllw/psrlw/psraw-style sll/srl/sra).
        for (const auto &sh : std::initializer_list<
                 std::pair<const char *, const char *>>{
                 {"sll", "<<"}, {"srl", ">>>"}, {"sra", ">>"}}) {
            for (int ew : wide_ew) {
                ElemOps e(ew);
                const std::string body =
                    format("%s %s b[%d:0]", e.a.c_str(), sh.second, ew - 1);
                emitSimd(spec,
                         format("%s_%s_%s", vec.prefix, sh.first,
                                epi(ew).c_str()),
                         vec.vw, ew, vecArgs2(vec.vw), vec.vw, 2, body);
                const int n = vec.vw / ew;
                emitSimd(spec,
                         format("%s_mask_%s_%s", vec.prefix, sh.first,
                                epi(ew).c_str()),
                         vec.vw, ew,
                         format("src: bit[%d], k: bit[%d], %s", vec.vw, n,
                                vecArgs2(vec.vw).c_str()),
                         vec.vw, 2, masked(body, ew));
            }
        }

        // Funnel (double-register) shifts by immediate: shldi/shrdi.
        for (const char *dir : {"shldi", "shrdi"}) {
            for (int ew : wide_ew) {
                ElemOps e(ew);
                std::string cat = format(
                    "(ZeroExtend(%s, %d) << %d) | ZeroExtend(%s, %d)",
                    e.a.c_str(), 2 * ew, ew, e.b.c_str(), 2 * ew);
                const std::string body =
                    dir[2] == 'l'
                        ? format("Truncate((%s) >>> (%d - imm), %d)",
                                 cat.c_str(), ew, ew)
                        : format("Truncate((%s) >>> imm, %d)", cat.c_str(),
                                 ew);
                const std::string args =
                    format("a: bit[%d], b: bit[%d], imm: imm", vec.vw,
                           vec.vw);
                emitSimd(spec,
                         format("%s_%s_%s", vec.prefix, dir, epi(ew).c_str()),
                         vec.vw, ew, args, vec.vw, 2, body);
                const int n = vec.vw / ew;
                emitSimd(spec,
                         format("%s_mask_%s_%s", vec.prefix, dir,
                                epi(ew).c_str()),
                         vec.vw, ew,
                         format("src: bit[%d], k: bit[%d], %s", vec.vw, n,
                                args.c_str()),
                         vec.vw, 2, masked(body, ew));
            }
        }

        // AVX-512 compare-into-mask: one result bit per element.
        {
            struct CmpKind
            {
                const char *stem;
                const char *op;
                bool swap;
            };
            const CmpKind kinds[] = {
                {"cmpeq", "==", false}, {"cmpneq", "!=", false},
                {"cmplt", "<", false},  {"cmple", "<=", false},
                {"cmpgt", "<", true},   {"cmpge", "<=", true},
            };
            for (const auto &kind : kinds) {
                for (int ew : all_ew) {
                    for (int uns = 0; uns < 2; ++uns) {
                        ElemOps e(ew);
                        // The parser handles unsigned relations via the
                        // U-suffixed comparison functions below.
                        std::string lhs = kind.swap ? e.b : e.a;
                        std::string rhs = kind.swap ? e.a : e.b;
                        std::string cond;
                        if (uns && kind.op[0] == '<') {
                            cond = format("%s(%s, %s)",
                                          kind.op[1] == '='
                                              ? "CMPULE"
                                              : "CMPULT",
                                          lhs.c_str(), rhs.c_str());
                        } else {
                            cond = format("%s %s %s", lhs.c_str(), kind.op,
                                          rhs.c_str());
                        }
                        const std::string name = format(
                            "%s_%s_%s_mask", vec.prefix, kind.stem,
                            (uns ? epu(ew) : epi(ew)).c_str());
                        const int n = vec.vw / ew;
                        std::string text = format(
                            "DEFINE %s(%s) -> bit[%d] LAT 1\n", name.c_str(),
                            vecArgs2(vec.vw).c_str(), n);
                        text += format("FOR j := 0 to %d\n", n - 1);
                        text += format("i := j*%d\n", ew);
                        text += format("dst[j:j] := %s ? ALLONES(1) : "
                                       "ZEROS(1)\n",
                                       cond.c_str());
                        text += "ENDFOR\nENDDEF\n";
                        emit(spec, name, text);

                        // Zero-masked compare: result bit is anded
                        // with the incoming predicate mask.
                        const std::string mname = format(
                            "%s_mask_%s_%s_mask", vec.prefix, kind.stem,
                            (uns ? epu(ew) : epi(ew)).c_str());
                        std::string mtext = format(
                            "DEFINE %s(k1: bit[%d], %s) -> bit[%d] LAT 1\n",
                            mname.c_str(), n, vecArgs2(vec.vw).c_str(), n);
                        mtext += format("FOR j := 0 to %d\n", n - 1);
                        mtext += format("i := j*%d\n", ew);
                        mtext += format(
                            "dst[j:j] := k1[j] & (%s ? ALLONES(1) : "
                            "ZEROS(1))\n",
                            cond.c_str());
                        mtext += "ENDFOR\nENDDEF\n";
                        emit(spec, mname, mtext);
                    }
                }
            }
        }

        // Whole-register logic (no per-element structure).
        const char *si = vec.vw == 128 ? "si128"
                         : vec.vw == 256 ? "si256"
                                         : "si512";
        struct LogicFam
        {
            const char *stem;
            const char *expr;
        };
        const LogicFam logic[] = {
            {"and", "a[%d:0] & b[%d:0]"},
            {"or", "a[%d:0] | b[%d:0]"},
            {"xor", "a[%d:0] ^ b[%d:0]"},
            {"andnot", "~a[%d:0] & b[%d:0]"},
        };
        for (const auto &lf : logic) {
            std::string text = format("DEFINE %s_%s_%s(%s) -> bit[%d] LAT 1\n",
                                      vec.prefix, lf.stem, si,
                                      vecArgs2(vec.vw).c_str(), vec.vw);
            text += format("dst[%d:0] := ", vec.vw - 1);
            text += format(lf.expr, vec.vw - 1, vec.vw - 1);
            text += "\nENDDEF\n";
            emit(spec, format("%s_%s_%s", vec.prefix, lf.stem, si), text);
        }

        // Sign-bit blend (SSE4-style) and mask blend (AVX-512-style).
        for (int ew : all_ew) {
            std::string body =
                format("b[i+%d] ? %s : %s", ew - 1, sl("b", "i", ew).c_str(),
                       sl("a", "i", ew).c_str());
            emitSimd(spec,
                     format("%s_blendv_%s", vec.prefix, epi(ew).c_str()),
                     vec.vw, ew, vecArgs2(vec.vw), vec.vw, 1, body);
            const int n = vec.vw / ew;
            emitSimd(spec,
                     format("%s_mask_blend_%s", vec.prefix, epi(ew).c_str()),
                     vec.vw, ew,
                     format("k: bit[%d], a: bit[%d], b: bit[%d]", n, vec.vw,
                            vec.vw),
                     vec.vw, 1,
                     format("k[j] ? %s : %s", sl("b", "i", ew).c_str(),
                            sl("a", "i", ew).c_str()));
            // mask_mov: same semantics as mask_blend with swapped
            // argument roles; the similarity engine's argument
            // permutation pass must merge the two (paper §3.3).
            emitSimd(spec,
                     format("%s_mask_mov_%s", vec.prefix, epi(ew).c_str()),
                     vec.vw, ew,
                     format("src: bit[%d], k: bit[%d], a: bit[%d]", vec.vw, n,
                            vec.vw),
                     vec.vw, 1,
                     format("k[j] ? %s : %s", sl("a", "i", ew).c_str(),
                            sl("src", "i", ew).c_str()));
        }

        // Broadcast, with AVX-512 masked forms.
        for (int ew : all_ew) {
            const std::string body = format("a[%d:0]", ew - 1);
            emitSimd(spec,
                     format("%s_set1_%s", vec.prefix, epi(ew).c_str()),
                     vec.vw, ew, format("a: bit[%d]", ew), vec.vw, 1, body);
            const int n = vec.vw / ew;
            emitSimd(spec,
                     format("%s_mask_set1_%s", vec.prefix, epi(ew).c_str()),
                     vec.vw, ew,
                     format("src: bit[%d], k: bit[%d], a: bit[%d]", vec.vw, n,
                            ew),
                     vec.vw, 1, masked(body, ew));
            emitSimd(spec,
                     format("%s_maskz_set1_%s", vec.prefix, epi(ew).c_str()),
                     vec.vw, ew,
                     format("k: bit[%d], a: bit[%d]", n, ew), vec.vw, 1,
                     maskedZ(body));
        }

        // Unpack (interleave) low/high within 128-bit lanes.
        for (int ew : all_ew) {
            const int lane_elems = 128 / ew;
            const int half = lane_elems / 2;
            const int lanes = vec.vw / 128;
            for (int hi = 0; hi < 2; ++hi) {
                const int offb = hi ? 64 : 0;
                std::string text = format(
                    "DEFINE %s_unpack%s_%s(%s) -> bit[%d] LAT 1\n",
                    vec.prefix, hi ? "hi" : "lo", epi(ew).c_str(),
                    vecArgs2(vec.vw).c_str(), vec.vw);
                text += format("FOR l := 0 to %d\n", lanes - 1);
                text += format("FOR m := 0 to %d\n", half - 1);
                text += format("s := (l*%d + m)*%d\n", lane_elems, ew);
                text += format("d := (l*%d + 2*m)*%d\n", lane_elems, ew);
                if (offb == 0) {
                    text += format("dst[d+%d:d] := a[s+%d:s]\n", ew - 1,
                                   ew - 1);
                    text += format("dst[d+%d:d+%d] := b[s+%d:s]\n",
                                   2 * ew - 1, ew, ew - 1);
                } else {
                    text += format("dst[d+%d:d] := a[s+%d:s+%d]\n", ew - 1,
                                   offb + ew - 1, offb);
                    text += format("dst[d+%d:d+%d] := b[s+%d:s+%d]\n",
                                   2 * ew - 1, ew, offb + ew - 1, offb);
                }
                text += "ENDFOR\nENDFOR\nENDDEF\n";
                emit(spec,
                     format("%s_unpack%s_%s", vec.prefix, hi ? "hi" : "lo",
                            epi(ew).c_str()),
                     text);
            }
        }

        // Pack with saturation (signed / unsigned), full-width variant.
        // Named by the *input* element width (packs_epi16: 16 -> 8).
        for (int in_ew : mid_ew) {
            const int ew = in_ew / 2;
            const int half_elems = vec.vw / in_ew;
            for (int uns = 0; uns < 2; ++uns) {
                const char *stem = uns ? "packus" : "packs";
                const char *sat = uns ? "SaturateU" : "Saturate";
                std::string text = format(
                    "DEFINE %s_%s_%s(%s) -> bit[%d] LAT 1\n", vec.prefix,
                    stem, epi(in_ew).c_str(), vecArgs2(vec.vw).c_str(),
                    vec.vw);
                text += format("FOR j := 0 to %d\n", half_elems - 1);
                text += format("dst[j*%d+%d:j*%d] := %s(a[j*%d+%d:j*%d], %d)\n",
                               ew, ew - 1, ew, sat, in_ew, in_ew - 1, in_ew,
                               ew);
                text += "ENDFOR\n";
                text += format("FOR j := 0 to %d\n", half_elems - 1);
                text += format(
                    "dst[%d+j*%d+%d:%d+j*%d] := %s(b[j*%d+%d:j*%d], %d)\n",
                    vec.vw / 2, ew, ew - 1, vec.vw / 2, ew, sat, in_ew,
                    in_ew - 1, in_ew, ew);
                text += "ENDFOR\nENDDEF\n";
                emit(spec,
                     format("%s_%s_%s", vec.prefix, stem, epi(in_ew).c_str()),
                     text);
            }
        }

        // Subvector extract (low/high half) and half-concatenation.
        if (vec.vw > 128) {
            const int half = vec.vw / 2;
            const int nbytes = half / 8;
            for (int hi = 0; hi < 2; ++hi) {
                const std::string name = format(
                    "%s_extract_%s_si%d", vec.prefix, hi ? "hi" : "lo",
                    half);
                // The low half is a plain register cast (free); the
                // high half needs a real extract instruction.
                std::string text = format(
                    "DEFINE %s(a: bit[%d]) -> bit[%d] LAT %d\n",
                    name.c_str(), vec.vw, half, hi ? 1 : 0);
                text += format("FOR j := 0 to %d\n", nbytes - 1);
                if (hi)
                    text += format("dst[j*8+7:j*8] := a[(j+%d)*8+7:(j+%d)*8]\n",
                                   nbytes, nbytes);
                else
                    text += "dst[j*8+7:j*8] := a[j*8+7:j*8]\n";
                text += "ENDFOR\nENDDEF\n";
                emit(spec, name, text);
            }
            const std::string cname =
                format("%s_concat_si%d", vec.prefix, half);
            std::string text = format(
                "DEFINE %s(hi: bit[%d], lo: bit[%d]) -> bit[%d] LAT 1\n",
                cname.c_str(), half, half, vec.vw);
            text += format("FOR j := 0 to %d\n", nbytes - 1);
            text += "dst[j*8+7:j*8] := lo[j*8+7:j*8]\n";
            text += "ENDFOR\n";
            text += format("FOR j := 0 to %d\n", nbytes - 1);
            text += format("dst[%d+j*8+7:%d+j*8] := hi[j*8+7:j*8]\n", half,
                           half);
            text += "ENDFOR\nENDDEF\n";
            emit(spec, cname, text);
        }

        // Byte-align (concatenate and shift by immediate bytes).
        {
            const int n = vec.vw / 8;
            std::string body = format(
                "(j + imm) < %d ? b[(j+imm)*8+7:(j+imm)*8] : "
                "a[(j+imm-%d)*8+7:(j+imm-%d)*8]",
                n, n, n);
            emitSimd(spec, format("%s_alignr_epi8", vec.prefix), vec.vw, 8,
                     format("a: bit[%d], b: bit[%d], imm: imm", vec.vw,
                            vec.vw),
                     vec.vw, 1, body);
        }

        // Widening converts: input register is the packed narrow half.
        struct CvtFam
        {
            int from, to;
        };
        const CvtFam cvts[] = {{8, 16}, {8, 32}, {8, 64},
                               {16, 32}, {16, 64}, {32, 64}};
        for (const auto &cvt : cvts) {
            const int n = vec.vw / cvt.to;
            const int in_w = n * cvt.from;
            for (int uns = 0; uns < 2; ++uns) {
                const char *ext = uns ? "ZeroExtend" : "SignExtend";
                const std::string stem =
                    format("cvt%s%d_%s", uns ? "epu" : "epi", cvt.from,
                           epi(cvt.to).c_str());
                const std::string elem =
                    format("%s(a[j*%d+%d:j*%d], %d)", ext, cvt.from,
                           cvt.from - 1, cvt.from, cvt.to);
                auto emit_cvt = [&](const std::string &prefix_args,
                                    const std::string &value,
                                    const std::string &variant) {
                    const std::string name = format(
                        "%s_%s%s", vec.prefix, variant.c_str(), stem.c_str());
                    std::string text = format(
                        "DEFINE %s(%sa: bit[%d]) -> bit[%d] LAT 3\n",
                        name.c_str(), prefix_args.c_str(), in_w, vec.vw);
                    text += format("FOR j := 0 to %d\n", n - 1);
                    text += format("i := j*%d\n", cvt.to);
                    text += format("dst[i+%d:i] := %s\n", cvt.to - 1,
                                   value.c_str());
                    text += "ENDFOR\nENDDEF\n";
                    emit(spec, name, text);
                };
                emit_cvt("", elem, "");
                emit_cvt(format("src: bit[%d], k: bit[%d], ", vec.vw, n),
                         masked(elem, cvt.to), "mask_");
                emit_cvt(format("k: bit[%d], ", n), maskedZ(elem), "maskz_");
            }
        }

        // Narrowing converts (AVX-512 style): plain, signed-sat and
        // unsigned-sat, with masked variants of the plain form.
        for (const auto &cvt : cvts) {
            const int n = vec.vw / cvt.to;
            const int out_w = n * cvt.from;
            struct NarrowKind
            {
                const char *stem;
                const char *fn;
            };
            const NarrowKind kinds[] = {{"cvt", "Truncate"},
                                        {"cvts", "Saturate"},
                                        {"cvtus", "SaturateU"}};
            for (const auto &kind : kinds) {
                const std::string elem =
                    format("%s(a[j*%d+%d:j*%d], %d)", kind.fn, cvt.to,
                           cvt.to - 1, cvt.to, cvt.from);
                auto emit_narrow = [&](const std::string &prefix_args,
                                       const std::string &value,
                                       const std::string &variant) {
                    const std::string name =
                        format("%s_%s%sepi%d_epi%d", vec.prefix,
                               variant.c_str(), kind.stem, cvt.to, cvt.from);
                    std::string text = format(
                        "DEFINE %s(%sa: bit[%d]) -> bit[%d] LAT 3\n",
                        name.c_str(), prefix_args.c_str(), vec.vw, out_w);
                    text += format("FOR j := 0 to %d\n", n - 1);
                    text += format("i := j*%d\n", cvt.from);
                    text += format("dst[i+%d:i] := %s\n", cvt.from - 1,
                                   value.c_str());
                    text += "ENDFOR\nENDDEF\n";
                    emit(spec, name, text);
                };
                emit_narrow("", elem, "");
                emit_narrow(format("src: bit[%d], k: bit[%d], ", out_w, n),
                            masked(elem, cvt.from), "mask_");
                emit_narrow(format("k: bit[%d], ", n), maskedZ(elem),
                            "maskz_");
            }
        }

        // madd: 16x16 -> 32 two-way dot product.
        {
            const int n = vec.vw / 32;
            std::string text = format(
                "DEFINE %s_madd_epi16(%s) -> bit[%d] LAT 5\n", vec.prefix,
                vecArgs2(vec.vw).c_str(), vec.vw);
            text += format("FOR j := 0 to %d\n", n - 1);
            text += "i := j*32\n";
            text += "dst[i+31:i] := SignExtend(a[i+15:i], 32) * "
                    "SignExtend(b[i+15:i], 32) + SignExtend(a[i+31:i+16], 32) "
                    "* SignExtend(b[i+31:i+16], 32)\n";
            text += "ENDFOR\nENDDEF\n";
            emit(spec, format("%s_madd_epi16", vec.prefix), text);
        }

        // maddubs: unsigned x signed bytes -> saturated 16-bit pairs.
        {
            const int n = vec.vw / 16;
            std::string text = format(
                "DEFINE %s_maddubs_epi16(%s) -> bit[%d] LAT 5\n", vec.prefix,
                vecArgs2(vec.vw).c_str(), vec.vw);
            text += format("FOR j := 0 to %d\n", n - 1);
            text += "i := j*16\n";
            text += "dst[i+15:i] := Saturate(ZeroExtend(a[i+7:i], 18) * "
                    "SignExtend(b[i+7:i], 18) + ZeroExtend(a[i+15:i+8], 18) * "
                    "SignExtend(b[i+15:i+8], 18), 16)\n";
            text += "ENDFOR\nENDDEF\n";
            emit(spec, format("%s_maddubs_epi16", vec.prefix), text);
        }

        // VNNI: dpwssd(s) 16-bit pairs and dpbusd(s) byte quads, with
        // accumulator input.
        {
            const int n = vec.vw / 32;
            std::string args = format("src: bit[%d], a: bit[%d], b: bit[%d]",
                                      vec.vw, vec.vw, vec.vw);
            std::string dot2 =
                "SignExtend(a[i+15:i], 32) * SignExtend(b[i+15:i], 32) + "
                "SignExtend(a[i+31:i+16], 32) * SignExtend(b[i+31:i+16], 32)";
            std::string text = format(
                "DEFINE %s_dpwssd_epi32(%s) -> bit[%d] LAT 5\n", vec.prefix,
                args.c_str(), vec.vw);
            text += format("FOR j := 0 to %d\ni := j*32\n", n - 1);
            text += format("dst[i+31:i] := src[i+31:i] + (%s)\n",
                           dot2.c_str());
            text += "ENDFOR\nENDDEF\n";
            emit(spec, format("%s_dpwssd_epi32", vec.prefix), text);

            text = format("DEFINE %s_dpwssds_epi32(%s) -> bit[%d] LAT 5\n",
                          vec.prefix, args.c_str(), vec.vw);
            text += format("FOR j := 0 to %d\ni := j*32\n", n - 1);
            text += format(
                "dst[i+31:i] := Saturate(SignExtend(src[i+31:i], 33) + "
                "SignExtend(%s, 33), 32)\n",
                dot2.c_str());
            text += "ENDFOR\nENDDEF\n";
            emit(spec, format("%s_dpwssds_epi32", vec.prefix), text);

            std::string dot4;
            for (int k = 0; k < 4; ++k) {
                if (k)
                    dot4 += " + ";
                dot4 += format(
                    "ZeroExtend(a[i+%d:i+%d], 32) * SignExtend(b[i+%d:i+%d], "
                    "32)",
                    8 * k + 7, 8 * k, 8 * k + 7, 8 * k);
            }
            text = format("DEFINE %s_dpbusd_epi32(%s) -> bit[%d] LAT 5\n",
                          vec.prefix, args.c_str(), vec.vw);
            text += format("FOR j := 0 to %d\ni := j*32\n", n - 1);
            text += format("dst[i+31:i] := src[i+31:i] + (%s)\n",
                           dot4.c_str());
            text += "ENDFOR\nENDDEF\n";
            emit(spec, format("%s_dpbusd_epi32", vec.prefix), text);

            text = format("DEFINE %s_dpbusds_epi32(%s) -> bit[%d] LAT 5\n",
                          vec.prefix, args.c_str(), vec.vw);
            text += format("FOR j := 0 to %d\ni := j*32\n", n - 1);
            text += format(
                "dst[i+31:i] := Saturate(SignExtend(src[i+31:i], 34) + "
                "SignExtend(%s, 34), 32)\n",
                dot4.c_str());
            text += "ENDFOR\nENDDEF\n";
            emit(spec, format("%s_dpbusds_epi32", vec.prefix), text);
        }

        // sad: sum of absolute byte differences per 64-bit group.
        {
            const int n = vec.vw / 64;
            std::string sum;
            for (int k = 0; k < 8; ++k) {
                if (k)
                    sum += " + ";
                sum += format(
                    "ZeroExtend(ABS(ZeroExtend(a[i+%d:i+%d], 9) - "
                    "ZeroExtend(b[i+%d:i+%d], 9)), 64)",
                    8 * k + 7, 8 * k, 8 * k + 7, 8 * k);
            }
            std::string text = format(
                "DEFINE %s_sad_epu8(%s) -> bit[%d] LAT 3\n", vec.prefix,
                vecArgs2(vec.vw).c_str(), vec.vw);
            text += format("FOR j := 0 to %d\ni := j*64\n", n - 1);
            text += format("dst[i+63:i] := %s\n", sum.c_str());
            text += "ENDFOR\nENDDEF\n";
            emit(spec, format("%s_sad_epu8", vec.prefix), text);
        }

        // Horizontal add/sub pairs: first half from a, second from b.
        for (int ew : mid_ew) {
            const int half_elems = vec.vw / (2 * ew);
            struct HFam
            {
                const char *stem;
                const char *op;
            };
            const HFam hfams[] = {{"hadd", "+"}, {"hsub", "-"}};
            for (const auto &hf : hfams) {
                std::string text = format(
                    "DEFINE %s_%s_%s(%s) -> bit[%d] LAT 3\n", vec.prefix,
                    hf.stem, epi(ew).c_str(), vecArgs2(vec.vw).c_str(),
                    vec.vw);
                for (int blk = 0; blk < 2; ++blk) {
                    const char *reg = blk == 0 ? "a" : "b";
                    const int base = blk * (vec.vw / 2);
                    text += format("FOR j := 0 to %d\n", half_elems - 1);
                    text += format(
                        "dst[%d+j*%d+%d:%d+j*%d] := %s[j*%d+%d:j*%d] %s "
                        "%s[j*%d+%d:j*%d+%d]\n",
                        base, ew, ew - 1, base, ew, reg, 2 * ew, ew - 1,
                        2 * ew, hf.op, reg, 2 * ew, 2 * ew - 1, 2 * ew, ew);
                    text += "ENDFOR\n";
                }
                text += "ENDDEF\n";
                emit(spec,
                     format("%s_%s_%s", vec.prefix, hf.stem, epi(ew).c_str()),
                     text);
            }
        }

        // Saturating horizontal add/sub (epi16 only, SSSE3-style).
        {
            const int ew = 16;
            const int half_elems = vec.vw / (2 * ew);
            struct HsFam
            {
                const char *stem;
                const char *op;
            };
            for (const auto &hf : {HsFam{"hadds", "+"}, HsFam{"hsubs", "-"}}) {
                std::string text = format(
                    "DEFINE %s_%s_epi16(%s) -> bit[%d] LAT 3\n", vec.prefix,
                    hf.stem, vecArgs2(vec.vw).c_str(), vec.vw);
                for (int blk = 0; blk < 2; ++blk) {
                    const char *reg = blk == 0 ? "a" : "b";
                    const int base = blk * (vec.vw / 2);
                    text += format("FOR j := 0 to %d\n", half_elems - 1);
                    text += format(
                        "dst[%d+j*%d+%d:%d+j*%d] := "
                        "Saturate(SignExtend(%s[j*%d+%d:j*%d], %d) %s "
                        "SignExtend(%s[j*%d+%d:j*%d+%d], %d), %d)\n",
                        base, ew, ew - 1, base, ew, reg, 2 * ew, ew - 1,
                        2 * ew, ew + 1, hf.op, reg, 2 * ew, 2 * ew - 1,
                        2 * ew, ew, ew + 1, ew);
                    text += "ENDFOR\n";
                }
                text += "ENDDEF\n";
                emit(spec, format("%s_%s_epi16", vec.prefix, hf.stem), text);
            }
        }
    }

    // Scalar ALU instructions (paper counts x86 scalar + vector).
    {
        const int widths[] = {8, 16, 32, 64};
        struct ScalarFam
        {
            const char *stem;
            const char *expr; // %d expands to width-1 (three times max).
            int lat;
            bool two_args;
        };
        const ScalarFam scalars[] = {
            {"add", "a[%d:0] + b[%d:0]", 1, true},
            {"sub", "a[%d:0] - b[%d:0]", 1, true},
            {"and", "a[%d:0] & b[%d:0]", 1, true},
            {"or", "a[%d:0] | b[%d:0]", 1, true},
            {"xor", "a[%d:0] ^ b[%d:0]", 1, true},
            {"mul", "a[%d:0] * b[%d:0]", 3, true},
            {"neg", "-a[%d:0]", 1, false},
            {"not", "~a[%d:0]", 1, false},
            {"shl", "a[%d:0] << b[%d:0]", 1, true},
            {"shr", "a[%d:0] >>> b[%d:0]", 1, true},
            {"sar", "a[%d:0] >> b[%d:0]", 1, true},
            {"abs", "ABS(a[%d:0])", 1, false},
        };
        for (const auto &sf : scalars) {
            for (int w : widths) {
                const std::string name = format("_x86_%s_r%d", sf.stem, w);
                std::string text = format(
                    "DEFINE %s(%s) -> bit[%d] LAT %d\n", name.c_str(),
                    sf.two_args
                        ? format("a: bit[%d], b: bit[%d]", w, w).c_str()
                        : format("a: bit[%d]", w).c_str(),
                    w, sf.lat);
                text += format("dst[%d:0] := ", w - 1);
                text += format(sf.expr, w - 1, w - 1, w - 1);
                text += "\nENDDEF\n";
                emit(spec, name, text);
            }
        }
    }

    return spec;
}

} // namespace hydride
