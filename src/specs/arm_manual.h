/**
 * @file
 * Programmatic stand-in for the ARM Developer NEON intrinsics
 * database: generates the AArch64 NEON vector ISA as ASL-style
 * pseudocode text consumed by the ARM parser. Covers D (64-bit) and
 * Q (128-bit) forms over signed/unsigned 8/16/32/64-bit elements —
 * including widening (long), narrowing (narrow/high-narrow),
 * saturating, halving, pairwise and dot-product families, plus the
 * zip/uzp/trn/ext/rev swizzles.
 *
 * NEON deliberately names wrap-around operations per type (vadd_s8
 * and vadd_u8 share semantics); the generator reproduces this, and
 * the similarity engine is expected to merge those variants into one
 * equivalence class — this is a large part of why ARM's ISA-to-
 * AutoLLVM compression ratio in Table 1 is high.
 */
#ifndef HYDRIDE_SPECS_ARM_MANUAL_H
#define HYDRIDE_SPECS_ARM_MANUAL_H

#include "specs/isa.h"

namespace hydride {

/** Generate the full ARM NEON vendor specification document. */
IsaSpec generateArmManual();

} // namespace hydride

#endif // HYDRIDE_SPECS_ARM_MANUAL_H
