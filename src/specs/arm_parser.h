/**
 * @file
 * Parser for the ARM (ASL/ARM-Developer-style) pseudocode dialect.
 *
 * Grammar sketch:
 *
 *   INSTRUCTION name (a: bits(128), n: imm, ...) => bits(128) LATENCY k
 *     for e = 0 to 7 do
 *       Elem[dst, e, 16] = SExt(Elem[a, e, 16], 17) + ...;
 *     endfor
 *   ENDINSTRUCTION
 *
 * `Elem[x, e, w]` denotes the w-bit element e of x; `Bits(x, hi, lo)`
 * is a raw bit-slice. Intrinsic functions: SExt, ZExt, Trunc, SSat,
 * USat, SMin, SMax, UMin, UMax, SAvg, UAvg, Abs, PopCount, UGT, UGE,
 * Ones, Zeros.
 */
#ifndef HYDRIDE_SPECS_ARM_PARSER_H
#define HYDRIDE_SPECS_ARM_PARSER_H

#include "hir/semantics.h"
#include "specs/isa.h"

namespace hydride {

/** Parse one ARM-dialect instruction definition. */
SpecFunction parseArmInst(const InstDef &inst);

} // namespace hydride

#endif // HYDRIDE_SPECS_ARM_PARSER_H
