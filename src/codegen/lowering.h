/**
 * @file
 * The auto-generated target-specific code generator (paper §3.5):
 * 1-1 lowering from AutoLLVM IR to target instructions.
 *
 * Because every AutoLLVM instruction records the concrete parameter
 * values of each member target instruction, lowering is a lookup: an
 * AutoLLVM call with parameter assignment P lowers to the class
 * member of the requested ISA whose parameters equal P (retargeting
 * across ISAs when the class spans several). No pattern matching
 * beyond this one-to-one mapping is needed — that is the point of
 * the AutoLLVM design.
 */
#ifndef HYDRIDE_CODEGEN_LOWERING_H
#define HYDRIDE_CODEGEN_LOWERING_H

#include <string>
#include <vector>

#include "autollvm/module.h"

namespace hydride {

/** One lowered target instruction. */
struct TargetInst
{
    std::string inst_name;
    std::string isa;
    int latency = 1;
    AutoOpVariant op;            ///< Executable semantics handle.
    std::vector<ValueRef> args;  ///< In representative argument order.
    std::vector<int64_t> int_args;
};

/** A straight-line target-instruction program. */
struct TargetProgram
{
    std::string isa;
    std::vector<int> input_widths;
    /** Hoisted constant vectors referenced via ValueRef::Const. */
    std::vector<BitVector> constants;
    std::vector<TargetInst> insts;
    int result = -1;
    /** Multi-register results (low part first); when set, evaluate()
     *  returns their concatenation and `result` is ignored. */
    std::vector<ValueRef> results;

    /** Static cost: sum of instruction latencies. */
    int cost() const;

    /** Execute functionally through the instruction semantics. */
    BitVector evaluate(const AutoLLVMDict &dict,
                       const std::vector<BitVector> &inputs) const;

    /** Assembly-like rendering. */
    std::string print() const;
};

/** Outcome of lowering an AutoLLVM module to one target. */
struct LoweringResult
{
    bool ok = false;
    TargetProgram program;
    std::string error;
};

/**
 * Lower `module` to `isa`. Instructions whose class has no member on
 * the target with matching parameters make lowering fail (the caller
 * — Hydride's synthesizer — only emits target-legal variants).
 */
LoweringResult lowerToTarget(const AutoModule &module,
                             const AutoLLVMDict &dict,
                             const std::string &isa);

} // namespace hydride

#endif // HYDRIDE_CODEGEN_LOWERING_H
