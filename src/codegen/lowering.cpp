#include "codegen/lowering.h"

#include "observability/journal/journal.h"
#include "support/error.h"
#include "support/faults.h"
#include "support/strings.h"

#include <sstream>

namespace hydride {

int
TargetProgram::cost() const
{
    int total = 0;
    for (const auto &inst : insts)
        total += inst.latency;
    return total;
}

BitVector
TargetProgram::evaluate(const AutoLLVMDict &dict,
                        const std::vector<BitVector> &inputs) const
{
    std::vector<BitVector> values;
    values.reserve(insts.size());
    for (const auto &inst : insts) {
        std::vector<BitVector> args;
        for (const auto &ref : inst.args) {
            if (ref.kind == ValueRef::Input)
                args.push_back(inputs[ref.index]);
            else if (ref.kind == ValueRef::Const)
                args.push_back(constants[ref.index]);
            else
                args.push_back(values[ref.index]);
        }
        values.push_back(dict.run(inst.op, args, inst.int_args));
    }
    if (!results.empty()) {
        auto value_of = [&](const ValueRef &ref) {
            if (ref.kind == ValueRef::Input)
                return inputs[ref.index];
            if (ref.kind == ValueRef::Const)
                return constants[ref.index];
            return values[ref.index];
        };
        BitVector out = value_of(results[0]);
        for (size_t r = 1; r < results.size(); ++r)
            out = BitVector::concat(value_of(results[r]), out);
        return out;
    }
    HYD_ASSERT(!values.empty(), "empty target program");
    const int out = result < 0 ? static_cast<int>(insts.size()) - 1 : result;
    return values[out];
}

std::string
TargetProgram::print() const
{
    std::ostringstream os;
    for (size_t v = 0; v < insts.size(); ++v) {
        const TargetInst &inst = insts[v];
        os << "%" << v << " = " << inst.inst_name << "(";
        for (size_t a = 0; a < inst.args.size(); ++a) {
            if (a)
                os << ", ";
            if (inst.args[a].kind == ValueRef::Input)
                os << "%arg" << inst.args[a].index;
            else if (inst.args[a].kind == ValueRef::Const)
                os << "%const" << inst.args[a].index;
            else
                os << "%" << inst.args[a].index;
        }
        for (int64_t imm : inst.int_args)
            os << ", " << imm;
        os << ")  ; lat " << inst.latency << "\n";
    }
    return os.str();
}

namespace {

/** Lowering failures are rare and decision-relevant (they push the
 *  driver down a rung), so each one lands in the journal. */
void
noteLoweringFailure(const std::string &isa, const std::string &error)
{
    if (!journal::enabled())
        return;
    auto fields = bjson::Value::makeObject();
    fields->set("isa", bjson::Value::makeString(isa));
    fields->set("error", bjson::Value::makeString(error));
    journal::emitEvent("lowering", fields);
}

} // namespace

LoweringResult
lowerToTarget(const AutoModule &module, const AutoLLVMDict &dict,
              const std::string &isa)
{
    LoweringResult result;
    result.program.isa = isa;
    result.program.input_widths = module.input_widths;
    result.program.constants = module.constants;
    result.program.result = module.result;

    // Chaos seam: lowering failure is an ordinary outcome (the driver
    // falls back to macro expansion); injecting it exercises that rung.
    if (faults::shouldFail("lowering.fail")) {
        result.error = "injected lowering failure";
        noteLoweringFailure(isa, result.error);
        return result;
    }

    for (const auto &inst : module.insts) {
        const EquivalenceClass &cls = dict.cls(inst.op.class_id);
        const ClassMember &chosen = inst.op.member(dict);

        // Retarget: find the member of this class on `isa` with the
        // same parameter assignment (possibly `chosen` itself).
        const ClassMember *target = nullptr;
        AutoOpVariant variant = inst.op;
        for (size_t m = 0; m < cls.members.size(); ++m) {
            const ClassMember &cand = cls.members[m];
            if (cand.isa == isa &&
                cand.param_values == chosen.param_values) {
                target = &cand;
                variant.member_index = static_cast<int>(m);
                break;
            }
        }
        if (!target) {
            result.error = format(
                "class %s has no %s member with the required parameters",
                dict.className(inst.op.class_id).c_str(), isa.c_str());
            noteLoweringFailure(isa, result.error);
            return result;
        }

        TargetInst lowered;
        lowered.inst_name = target->name;
        lowered.isa = isa;
        lowered.latency = target->latency;
        lowered.op = variant;
        lowered.args = inst.args;
        lowered.int_args = inst.int_args;
        result.program.insts.push_back(std::move(lowered));
    }
    result.ok = true;
    return result;
}

} // namespace hydride
