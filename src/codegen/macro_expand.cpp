#include "codegen/macro_expand.h"

#include "observability/metrics.h"
#include "observability/trace.h"
#include "support/error.h"
#include "support/faults.h"
#include "support/rng.h"
#include "support/strings.h"

#include <algorithm>

namespace hydride {

MacroExpander::MacroExpander(const AutoLLVMDict &dict, std::string isa,
                             int vector_bits, ExpanderOptions options)
    : dict_(dict), isa_(std::move(isa)), vector_bits_(vector_bits),
      options_(std::move(options))
{
}

int
MacroExpander::refArity(MOp op) const
{
    switch (op) {
      case MOp::AbsS:
      case MOp::ShlImm:
      case MOp::AShrImm:
      case MOp::LShrImm:
      case MOp::CastWidenS:
      case MOp::CastWidenU:
      case MOp::Narrow1Trunc:
      case MOp::Narrow1SatS:
      case MOp::Narrow1SatU:
      case MOp::PairLo:
      case MOp::PairHi:
        return 1;
      default:
        return 2;
    }
}

BitVector
MacroExpander::reference(MOp op, const std::vector<BitVector> &args, int ew,
                         int64_t imm) const
{
    const BitVector &a = args[0];
    auto lanewise2 = [&](auto fn) {
        const BitVector &b = args[1];
        BitVector out(a.width());
        for (int lane = 0; lane < a.width() / ew; ++lane) {
            out.setSlice(lane * ew, fn(a.extract(lane * ew, ew),
                                       b.extract(lane * ew, ew)));
        }
        return out;
    };
    auto lanewise1 = [&](auto fn) {
        BitVector out(a.width());
        for (int lane = 0; lane < a.width() / ew; ++lane)
            out.setSlice(lane * ew, fn(a.extract(lane * ew, ew)));
        return out;
    };
    using BV = BitVector;
    switch (op) {
      case MOp::Add:
        return lanewise2([](BV x, BV y) { return x.add(y); });
      case MOp::Sub:
        return lanewise2([](BV x, BV y) { return x.sub(y); });
      case MOp::Mul:
        return lanewise2([](BV x, BV y) { return x.mul(y); });
      case MOp::MinS:
        return lanewise2([](BV x, BV y) { return x.minS(y); });
      case MOp::MaxS:
        return lanewise2([](BV x, BV y) { return x.maxS(y); });
      case MOp::MinU:
        return lanewise2([](BV x, BV y) { return x.minU(y); });
      case MOp::MaxU:
        return lanewise2([](BV x, BV y) { return x.maxU(y); });
      case MOp::SatAddS:
        return lanewise2([](BV x, BV y) { return x.addSatS(y); });
      case MOp::SatAddU:
        return lanewise2([](BV x, BV y) { return x.addSatU(y); });
      case MOp::SatSubS:
        return lanewise2([](BV x, BV y) { return x.subSatS(y); });
      case MOp::SatSubU:
        return lanewise2([](BV x, BV y) { return x.subSatU(y); });
      case MOp::AvgU:
        return lanewise2([](BV x, BV y) { return x.avgU(y); });
      case MOp::AbsS:
        return lanewise1([](BV x) { return x.absS(); });
      case MOp::MulHi:
        return lanewise2([&](BV x, BV y) {
            return x.sext(2 * ew).mul(y.sext(2 * ew)).extract(ew, ew);
        });
      case MOp::ShlImm:
        return lanewise1(
            [&](BV x) { return x.shl(static_cast<int>(imm)); });
      case MOp::AShrImm:
        return lanewise1(
            [&](BV x) { return x.ashr(static_cast<int>(imm)); });
      case MOp::LShrImm:
        return lanewise1(
            [&](BV x) { return x.lshr(static_cast<int>(imm)); });
      case MOp::CastWidenS:
      case MOp::CastWidenU: {
        // Input lanes are `ew/2` wide; output doubles each lane.
        const int from = ew / 2;
        BitVector out(a.width() * 2);
        for (int lane = 0; lane < a.width() / from; ++lane) {
            BitVector elem = a.extract(lane * from, from);
            out.setSlice(lane * ew, op == MOp::CastWidenS ? elem.sext(ew)
                                                          : elem.zext(ew));
        }
        return out;
      }
      case MOp::Narrow1Trunc:
      case MOp::Narrow1SatS:
      case MOp::Narrow1SatU: {
        const int from = 2 * ew;
        BitVector out(a.width() / 2);
        for (int lane = 0; lane < a.width() / from; ++lane) {
            BitVector elem = a.extract(lane * from, from);
            BitVector narrow = op == MOp::Narrow1Trunc ? elem.trunc(ew)
                               : op == MOp::Narrow1SatS ? elem.satNarrowS(ew)
                                                        : elem.satNarrowU(ew);
            out.setSlice(lane * ew, narrow);
        }
        return out;
      }
      case MOp::NarrowPair2Trunc:
      case MOp::NarrowPair2SatS:
      case MOp::NarrowPair2SatU:
      case MOp::NarrowPair2TruncRev:
      case MOp::NarrowPair2SatSRev:
      case MOp::NarrowPair2SatURev: {
        const int from = 2 * ew;
        const bool reversed = op == MOp::NarrowPair2TruncRev ||
                              op == MOp::NarrowPair2SatSRev ||
                              op == MOp::NarrowPair2SatURev;
        const BitVector &lo_src = reversed ? args[1] : args[0];
        const BitVector &hi_src = reversed ? args[0] : args[1];
        const bool trunc_kind = op == MOp::NarrowPair2Trunc ||
                                op == MOp::NarrowPair2TruncRev;
        const bool sat_s = op == MOp::NarrowPair2SatS ||
                           op == MOp::NarrowPair2SatSRev;
        BitVector out(a.width());
        const int n = a.width() / from;
        for (int half = 0; half < 2; ++half) {
            const BitVector &src = half ? hi_src : lo_src;
            for (int lane = 0; lane < n; ++lane) {
                BitVector elem = src.extract(lane * from, from);
                BitVector narrow = trunc_kind ? elem.trunc(ew)
                                   : sat_s    ? elem.satNarrowS(ew)
                                              : elem.satNarrowU(ew);
                out.setSlice((half * n + lane) * ew, narrow);
            }
        }
        return out;
      }
      case MOp::PairAdd: {
        // [pairsums(a) | pairsums(b)], matching hadd and vpadd.
        const BitVector &b = args[1];
        const int n = a.width() / ew / 2;
        BitVector out(a.width());
        for (int half = 0; half < 2; ++half) {
            const BitVector &src = half ? b : a;
            for (int lane = 0; lane < n; ++lane) {
                BitVector sum = src.extract(2 * lane * ew, ew)
                                    .add(src.extract((2 * lane + 1) * ew,
                                                     ew));
                out.setSlice((half * n + lane) * ew, sum);
            }
        }
        return out;
      }
      case MOp::DealPair: {
        // HVX vdeal(Vu, Vv) semantics: evens of Vv (second argument)
        // first, then evens of Vu, then the odds in the same order.
        const BitVector &u = args[0];
        const BitVector &v = args[1];
        const int n = v.width() / ew;
        BitVector out(2 * v.width());
        for (int lane = 0; lane < n / 2; ++lane) {
            out.setSlice(lane * ew, v.extract(2 * lane * ew, ew));
            out.setSlice((n / 2 + lane) * ew,
                         u.extract(2 * lane * ew, ew));
            out.setSlice((n + lane) * ew,
                         v.extract((2 * lane + 1) * ew, ew));
            out.setSlice((n + n / 2 + lane) * ew,
                         u.extract((2 * lane + 1) * ew, ew));
        }
        return out;
      }
      case MOp::PairLo:
        return a.extract(0, a.width() / 2);
      case MOp::PairHi:
        return a.extract(a.width() / 2, a.width() / 2);
      case MOp::ConcatHalves:
        return BitVector::concat(args[1], args[0]);
    }
    panic("unhandled macro op");
}

std::optional<MacroExpander::Pick>
MacroExpander::lookup(MOp op, int ew, int in_width)
{
    const PickKey key{op, ew, in_width};
    auto cached = pick_cache_.find(key);
    if (cached != pick_cache_.end())
        return cached->second;

    const int arity = refArity(op);
    const bool wants_imm = op == MOp::ShlImm || op == MOp::AShrImm ||
                           op == MOp::LShrImm;
    std::optional<Pick> best;
    Rng rng(0xAB5EED ^ (static_cast<uint64_t>(op) << 20) ^
            (static_cast<uint64_t>(ew) << 8) ^ in_width);
    // Probe immediates: 3 covers shift-amount distinctions.
    const int64_t probe_imm = 3;

    for (const auto &variant : dict_.isaVariants(isa_)) {
        const EquivalenceClass &cls = dict_.cls(variant.class_id);
        const ClassMember &member = cls.members[variant.member_index];
        if (options_.allow && !options_.allow(member.name))
            continue;
        if (static_cast<int>(cls.rep.bv_args.size()) != arity)
            continue;
        if (static_cast<int>(cls.rep.int_args.size()) !=
            (wants_imm ? 1 : 0)) {
            continue;
        }
        if (best && member.latency >= best->latency)
            continue;
        bool widths_ok = true;
        for (int a = 0; a < arity && widths_ok; ++a)
            widths_ok = cls.rep.argWidth(a, member.param_values) == in_width;
        if (!widths_ok)
            continue;

        // Evaluate the variant against the reference on random probes.
        bool matches = true;
        Rng probe_rng = rng;
        int out_width = 0;
        for (int trial = 0; trial < 3 && matches; ++trial) {
            std::vector<BitVector> args;
            for (int a = 0; a < arity; ++a)
                args.push_back(BitVector::random(in_width, probe_rng));
            const BitVector expected = reference(op, args, ew, probe_imm);
            std::vector<int64_t> imms;
            if (wants_imm)
                imms.push_back(probe_imm);
            if (cls.rep.outputWidth(member.param_values) !=
                expected.width()) {
                matches = false;
                break;
            }
            // Feed the member's own argument order via arg_perm.
            std::vector<BitVector> rep_args;
            for (int a = 0; a < arity; ++a)
                rep_args.push_back(args[a]);
            const BitVector actual = dict_.run(variant, rep_args, imms);
            out_width = actual.width();
            matches = actual == expected;
        }
        if (matches) {
            Pick pick;
            pick.variant = variant;
            pick.name = member.name;
            pick.latency = member.latency;
            pick.out_width = out_width;
            pick.takes_imm = wants_imm;
            best = pick;
        }
    }
    pick_cache_[key] = best;
    return best;
}

ValueRef
MacroExpander::emit(const Pick &pick, std::vector<ValueRef> args,
                    std::vector<int64_t> imms)
{
    TargetInst inst;
    inst.inst_name = pick.name;
    inst.isa = isa_;
    inst.latency = pick.latency;
    inst.op = pick.variant;
    inst.args = std::move(args);
    inst.int_args = std::move(imms);
    program_.insts.push_back(std::move(inst));
    return ValueRef::inst(static_cast<int>(program_.insts.size()) - 1);
}

ValueRef
MacroExpander::emitOp(MOp op, int ew, std::vector<Chunk> args, int64_t imm,
                      bool &ok)
{
    const int in_width = args[0].width;
    std::optional<Pick> pick = lookup(op, ew, in_width);
    if (!pick) {
        ok = false;
        return ValueRef::input(0);
    }
    std::vector<ValueRef> refs;
    for (const auto &chunk : args)
        refs.push_back(chunk.ref);
    std::vector<int64_t> imms;
    if (pick->takes_imm)
        imms.push_back(imm);
    return emit(*pick, std::move(refs), std::move(imms));
}

ValueRef
MacroExpander::constChunk(int64_t value, int ew, int lanes)
{
    BitVector chunk(ew * lanes);
    const BitVector elem = BitVector::fromInt(ew, value);
    for (int lane = 0; lane < lanes; ++lane)
        chunk.setSlice(lane * ew, elem);
    program_.constants.push_back(std::move(chunk));
    return ValueRef::constant(
        static_cast<int>(program_.constants.size()) - 1);
}

MacroExpander::Chunked
MacroExpander::fail(const std::string &message)
{
    if (ok_) {
        ok_ = false;
        error_ = message;
    }
    return {};
}

MacroExpander::Chunked
MacroExpander::widenChunks(const Chunked &in, int ew, bool sign)
{
    Chunked out;
    out.elem_width = ew;
    const MOp cast = sign ? MOp::CastWidenS : MOp::CastWidenU;
    for (const auto &chunk : in.chunks) {
        // Each source chunk yields two destination chunks; the
        // widening converts take the packed narrow half, so machine-
        // width chunks are first split with PairLo/PairHi.
        std::optional<Pick> direct = lookup(cast, ew, chunk.width);
        if (direct) {
            ValueRef wide = emit(*direct, {chunk.ref}, {});
            if (2 * chunk.width > vector_bits_) {
                // Pair-register result (HVX vunpack): address the two
                // registers individually.
                bool split_ok = true;
                Chunk pair{wide, 2 * chunk.width};
                ValueRef lo = emitOp(MOp::PairLo, ew, {pair}, 0, split_ok);
                ValueRef hi = emitOp(MOp::PairHi, ew, {pair}, 0, split_ok);
                if (!split_ok)
                    return fail("cannot split a pair-register result");
                out.chunks.push_back({lo, chunk.width});
                out.chunks.push_back({hi, chunk.width});
            } else {
                out.chunks.push_back({wide, 2 * chunk.width});
            }
            continue;
        }
        bool split_ok = true;
        ValueRef lo = emitOp(MOp::PairLo, ew, {chunk}, 0, split_ok);
        ValueRef hi = emitOp(MOp::PairHi, ew, {chunk}, 0, split_ok);
        if (!split_ok)
            return fail("no widening cast path at this width");
        Chunk lo_chunk{lo, chunk.width / 2};
        Chunk hi_chunk{hi, chunk.width / 2};
        bool cast_ok = true;
        ValueRef lo_wide = emitOp(cast, ew, {lo_chunk}, 0, cast_ok);
        ValueRef hi_wide = emitOp(cast, ew, {hi_chunk}, 0, cast_ok);
        if (!cast_ok)
            return fail("no widening cast instruction");
        out.chunks.push_back({lo_wide, chunk.width});
        out.chunks.push_back({hi_wide, chunk.width});
    }
    return out;
}

MacroExpander::Chunked
MacroExpander::lowerNarrow(const Chunked &in, int ew, MOp one, MOp pair2)
{
    Chunked out;
    out.elem_width = ew;
    if (in.chunks.empty())
        return fail("narrowing an empty value");
    const int chunk_w = in.chunks[0].width;

    // Preferred: a two-input full-register pack (x86 packs, HVX
    // vpack/vsat families). HVX names its operands the other way
    // around (Vv supplies the low half), so the reversed form is
    // probed too and emitted with swapped operands.
    MOp pair2_rev = pair2 == MOp::NarrowPair2Trunc ? MOp::NarrowPair2TruncRev
                    : pair2 == MOp::NarrowPair2SatS
                        ? MOp::NarrowPair2SatSRev
                        : MOp::NarrowPair2SatURev;
    if (in.chunks.size() % 2 == 0 &&
        (lookup(pair2, ew, chunk_w) || lookup(pair2_rev, ew, chunk_w))) {
        const bool reversed = !lookup(pair2, ew, chunk_w);
        const MOp chosen = reversed ? pair2_rev : pair2;
        for (size_t c = 0; c + 1 < in.chunks.size(); c += 2) {
            bool op_ok = true;
            const Chunk &lo = in.chunks[c];
            const Chunk &hi = in.chunks[c + 1];
            ValueRef ref =
                reversed ? emitOp(chosen, ew, {hi, lo}, 0, op_ok)
                         : emitOp(chosen, ew, {lo, hi}, 0, op_ok);
            if (!op_ok)
                return fail("pack lowering failed");
            out.chunks.push_back({ref, chunk_w});
        }
        return out;
    }

    // Saturating narrows without a fused instruction (what a plain
    // LLVM lowering does): clamp with min/max against splat bounds at
    // the wide type, then truncate-narrow.
    // (If a usable pair2 existed for an even chunk list, we already
    // returned above.)
    const bool saturating = one != MOp::Narrow1Trunc;
    if (saturating && !lookup(one, ew, chunk_w)) {
        const int wide = 2 * ew;
        const bool uns = one == MOp::Narrow1SatU;
        const int64_t hi_bound = uns ? (1ll << ew) - 1
                                     : (1ll << (ew - 1)) - 1;
        const int64_t lo_bound = uns ? 0 : -(1ll << (ew - 1));
        Chunked clamped;
        clamped.elem_width = wide;
        for (const auto &chunk : in.chunks) {
            const int lanes = chunk.width / wide;
            Chunk hi_c{constChunk(hi_bound, wide, lanes), chunk.width};
            Chunk lo_c{constChunk(lo_bound, wide, lanes), chunk.width};
            bool op_ok = true;
            ValueRef t = emitOp(MOp::MinS, wide, {chunk, hi_c}, 0, op_ok);
            if (!op_ok)
                return fail("no clamp path for saturating narrow");
            ValueRef u = emitOp(MOp::MaxS, wide,
                                {Chunk{t, chunk.width}, lo_c}, 0, op_ok);
            if (!op_ok)
                return fail("no clamp path for saturating narrow");
            clamped.chunks.push_back({u, chunk.width});
        }
        return lowerNarrow(clamped, ew, MOp::Narrow1Trunc,
                           MOp::NarrowPair2Trunc);
    }

    // Fallback: per-register narrowing convert producing half-width
    // values, re-joined with a half-concatenation when available.
    if (!lookup(one, ew, chunk_w))
        return fail("no narrowing instruction at this width");
    std::vector<Chunk> halves;
    for (const auto &chunk : in.chunks) {
        bool op_ok = true;
        ValueRef ref = emitOp(one, ew, {chunk}, 0, op_ok);
        if (!op_ok)
            return fail("narrowing convert failed");
        halves.push_back({ref, chunk_w / 2});
    }
    if (halves.size() % 2 == 0 && lookup(MOp::ConcatHalves, ew, chunk_w / 2)) {
        for (size_t h = 0; h + 1 < halves.size(); h += 2) {
            bool op_ok = true;
            ValueRef ref = emitOp(MOp::ConcatHalves, ew,
                                  {halves[h], halves[h + 1]}, 0, op_ok);
            if (!op_ok)
                return fail("half concatenation failed");
            out.chunks.push_back({ref, chunk_w});
        }
        return out;
    }
    out.chunks = std::move(halves);
    return out;
}

MacroExpander::Chunked
MacroExpander::lowerReduce2(const Chunked &in, int ew)
{
    Chunked out;
    out.elem_width = ew;
    if (in.chunks.empty())
        return fail("reducing an empty value");
    const int chunk_w = in.chunks[0].width;

    auto reduce_pair = [&](const Chunk &c0, const Chunk &c1,
                           bool &ok) -> ValueRef {
        // Strategy 1: a block-pairwise add (x86 hadd / ARM vpadd).
        if (lookup(MOp::PairAdd, ew, chunk_w))
            return emitOp(MOp::PairAdd, ew, {c0, c1}, 0, ok);
        // Strategy 2: HVX-style deinterleave into a pair, then add
        // the two pair halves (vdeal + vlo + vhi + vadd).
        if (lookup(MOp::DealPair, ew, chunk_w)) {
            ValueRef deal = emitOp(MOp::DealPair, ew, {c1, c0}, 0, ok);
            if (!ok)
                return ValueRef::input(0);
            Chunk pair{deal, 2 * chunk_w};
            ValueRef lo = emitOp(MOp::PairLo, ew, {pair}, 0, ok);
            ValueRef hi = emitOp(MOp::PairHi, ew, {pair}, 0, ok);
            if (!ok)
                return ValueRef::input(0);
            return emitOp(MOp::Add, ew,
                          {Chunk{lo, chunk_w}, Chunk{hi, chunk_w}}, 0, ok);
        }
        ok = false;
        return ValueRef::input(0);
    };

    if (in.chunks.size() % 2 == 0) {
        for (size_t c = 0; c + 1 < in.chunks.size(); c += 2) {
            bool op_ok = true;
            ValueRef ref = reduce_pair(in.chunks[c], in.chunks[c + 1],
                                       op_ok);
            if (!op_ok)
                return fail("no pairwise-reduction path on this target");
            out.chunks.push_back({ref, chunk_w});
        }
        return out;
    }

    // Single chunk: reduce within one register, then keep the low
    // half.
    bool op_ok = true;
    ValueRef full = reduce_pair(in.chunks[0], in.chunks[0], op_ok);
    if (!op_ok)
        return fail("no pairwise-reduction path on this target");
    ValueRef lo = emitOp(MOp::PairLo, ew, {Chunk{full, chunk_w}}, 0, op_ok);
    if (!op_ok)
        return fail("no half extraction on this target");
    out.chunks.push_back({lo, chunk_w / 2});
    return out;
}

MacroExpander::Chunked
MacroExpander::lower(const HExprPtr &expr)
{
    if (!ok_)
        return {};
    auto cached = cse_.find(expr.get());
    if (cached != cse_.end())
        return cached->second;
    Chunked lowered = lowerUncached(expr);
    if (ok_)
        cse_.emplace(expr.get(), lowered);
    return lowered;
}

MacroExpander::Chunked
MacroExpander::lowerUncached(const HExprPtr &expr)
{
    const int ew = expr->elem_width;
    Chunked out;
    out.elem_width = ew;

    switch (expr->op) {
      case HOp::Input: {
        const int total = expr->totalWidth();
        // Inputs wider than a register arrive pre-split; the kernels
        // in this repository size inputs to the machine width.
        if (total > vector_bits_)
            return fail("input wider than a machine register");
        out.chunks.push_back({ValueRef::input(static_cast<int>(expr->imm)),
                              total});
        return out;
      }
      case HOp::ConstSplat: {
        // Splat constants are materialized per machine register.
        int remaining = expr->lanes;
        const int lanes_per_chunk =
            std::max(1, std::min(expr->lanes, vector_bits_ / ew));
        while (remaining > 0) {
            const int lanes = std::min(remaining, lanes_per_chunk);
            out.chunks.push_back(
                {constChunk(expr->imm, ew, lanes), lanes * ew});
            remaining -= lanes;
        }
        return out;
      }
      case HOp::Cast: {
        Chunked in = lower(expr->kids[0]);
        if (!ok_)
            return {};
        const int from = expr->kids[0]->elem_width;
        if (ew == from)
            return in;
        if (ew == 2 * from)
            return widenChunks(in, ew, expr->sign);
        if (from == 2 * ew) {
            return lowerNarrow(in, ew, MOp::Narrow1Trunc,
                               MOp::NarrowPair2Trunc);
        }
        return fail("unsupported cast ratio");
      }
      case HOp::SatNarrowS:
      case HOp::SatNarrowU: {
        Chunked in = lower(expr->kids[0]);
        if (!ok_)
            return {};
        const int from = expr->kids[0]->elem_width;
        if (from != 2 * ew)
            return fail("saturating cast must halve the element width");
        return expr->op == HOp::SatNarrowS
                   ? lowerNarrow(in, ew, MOp::Narrow1SatS,
                                 MOp::NarrowPair2SatS)
                   : lowerNarrow(in, ew, MOp::Narrow1SatU,
                                 MOp::NarrowPair2SatU);
      }
      case HOp::ReduceAdd: {
        if (expr->imm != 2)
            return fail("only stride-2 reductions are generated");
        Chunked in = lower(expr->kids[0]);
        if (!ok_)
            return {};
        return lowerReduce2(in, ew);
      }
      case HOp::Concat: {
        Chunked lo = lower(expr->kids[0]);
        Chunked hi = lower(expr->kids[1]);
        if (!ok_)
            return {};
        out.chunks = lo.chunks;
        out.chunks.insert(out.chunks.end(), hi.chunks.begin(),
                          hi.chunks.end());
        return out;
      }
      case HOp::ShlC:
      case HOp::AShrC:
      case HOp::LShrC: {
        Chunked in = lower(expr->kids[0]);
        if (!ok_)
            return {};
        const MOp mop = expr->op == HOp::ShlC    ? MOp::ShlImm
                        : expr->op == HOp::AShrC ? MOp::AShrImm
                                                 : MOp::LShrImm;
        for (const auto &chunk : in.chunks) {
            bool op_ok = true;
            ValueRef ref = emitOp(mop, ew, {chunk}, expr->imm, op_ok);
            if (!op_ok)
                return fail("no shift instruction at this width");
            out.chunks.push_back({ref, chunk.width});
        }
        return out;
      }
      case HOp::AbsS: {
        Chunked in = lower(expr->kids[0]);
        if (!ok_)
            return {};
        for (const auto &chunk : in.chunks) {
            bool op_ok = true;
            ValueRef ref = emitOp(MOp::AbsS, ew, {chunk}, 0, op_ok);
            if (!op_ok)
                return fail("no abs instruction at this width");
            out.chunks.push_back({ref, chunk.width});
        }
        return out;
      }
      case HOp::Slice:
        return fail("slice lowering is not needed by the kernels");
      default: {
        // Lane-wise binary operations.
        Chunked a = lower(expr->kids[0]);
        Chunked b = lower(expr->kids[1]);
        if (!ok_)
            return {};
        if (a.chunks.size() != b.chunks.size())
            return fail("operand chunk shapes diverge");
        MOp mop;
        switch (expr->op) {
          case HOp::Add: mop = MOp::Add; break;
          case HOp::Sub: mop = MOp::Sub; break;
          case HOp::Mul: mop = MOp::Mul; break;
          case HOp::MinS: mop = MOp::MinS; break;
          case HOp::MaxS: mop = MOp::MaxS; break;
          case HOp::MinU: mop = MOp::MinU; break;
          case HOp::MaxU: mop = MOp::MaxU; break;
          case HOp::SatAddS: mop = MOp::SatAddS; break;
          case HOp::SatAddU: mop = MOp::SatAddU; break;
          case HOp::SatSubS: mop = MOp::SatSubS; break;
          case HOp::SatSubU: mop = MOp::SatSubU; break;
          case HOp::AvgU: mop = MOp::AvgU; break;
          case HOp::MulHiS: mop = MOp::MulHi; break;
          default:
            return fail(std::string("unsupported operator ") +
                        hOpName(expr->op));
        }
        if (mop == MOp::MulHi &&
            !lookup(MOp::MulHi, ew, a.chunks[0].width)) {
            // No multiply-high on this target: widen both operands,
            // multiply at double width, shift the products right by
            // the element width and truncate back down.
            Chunked wa = widenChunks(a, 2 * ew, true);
            Chunked wb = widenChunks(b, 2 * ew, true);
            if (!ok_)
                return {};
            Chunked prod;
            prod.elem_width = 2 * ew;
            for (size_t c = 0; c < wa.chunks.size(); ++c) {
                bool op_ok = true;
                ValueRef m = emitOp(MOp::Mul, 2 * ew,
                                    {wa.chunks[c], wb.chunks[c]}, 0, op_ok);
                if (!op_ok)
                    return fail("no wide multiply for mulhi expansion");
                ValueRef s = emitOp(MOp::LShrImm, 2 * ew,
                                    {Chunk{m, wa.chunks[c].width}}, ew,
                                    op_ok);
                if (!op_ok)
                    return fail("no shift for mulhi expansion");
                prod.chunks.push_back({s, wa.chunks[c].width});
            }
            return lowerNarrow(prod, ew, MOp::Narrow1Trunc,
                               MOp::NarrowPair2Trunc);
        }
        for (size_t c = 0; c < a.chunks.size(); ++c) {
            if (a.chunks[c].width != b.chunks[c].width)
                return fail("operand chunk width mismatch");
            bool op_ok = true;
            ValueRef ref = emitOp(mop, ew, {a.chunks[c], b.chunks[c]}, 0,
                                  op_ok);
            if (!op_ok)
                return fail(std::string("no instruction for ") +
                            hOpName(expr->op));
            out.chunks.push_back({ref, a.chunks[c].width});
        }
        return out;
      }
    }
}

ExpandResult
MacroExpander::expand(const HExprPtr &window)
{
    trace::TraceSpan span("codegen.macro_expand.expand");
    span.setAttr("isa", isa_);
    static metrics::Counter &windows =
        metrics::counter("codegen.macro_expand.windows");
    windows.add();

    program_ = TargetProgram();
    program_.isa = isa_;
    error_.clear();
    ok_ = true;
    cse_.clear();

    // Chaos seam: expansion failure is an ordinary outcome (no
    // instruction covers the op); injecting it drives callers onto
    // the scalarization rung.
    if (faults::shouldFail("macro.fail")) {
        ExpandResult injected;
        injected.error = "injected macro-expansion failure";
        return injected;
    }

    // Record input widths.
    std::vector<const HExpr *> stack = {window.get()};
    while (!stack.empty()) {
        const HExpr *node = stack.back();
        stack.pop_back();
        if (node->op == HOp::Input) {
            if (node->imm >=
                static_cast<int64_t>(program_.input_widths.size()))
                program_.input_widths.resize(node->imm + 1, 0);
            program_.input_widths[node->imm] = node->totalWidth();
        }
        for (const auto &kid : node->kids)
            stack.push_back(kid.get());
    }

    Chunked value = lower(window);
    ExpandResult result;
    if (!ok_) {
        result.error = error_;
        return result;
    }
    if (value.chunks.empty()) {
        result.error = "window produced no value";
        return result;
    }
    for (const auto &chunk : value.chunks)
        program_.results.push_back(chunk.ref);
    if (options_.splice_skew != 0 && program_.results.size() > 1) {
        // Seeded off-by-one lane-splice defect: the program computes
        // the right registers but concatenates them out of order.
        const size_t skew = static_cast<size_t>(options_.splice_skew) %
                            program_.results.size();
        std::rotate(program_.results.begin(),
                    program_.results.begin() + skew,
                    program_.results.end());
    }
    result.ok = true;
    result.program = std::move(program_);
    return result;
}

} // namespace hydride
