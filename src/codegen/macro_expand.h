/**
 * @file
 * Direct macro expansion of Halide-IR windows to target programs.
 *
 * This is the straightforward, per-operation instruction selector: it
 * maps each Halide vector operation onto the cheapest target
 * instruction that implements exactly that operation, splitting
 * values wider than a machine register into register-sized chunks
 * (widening casts double the footprint, narrowing halves it, strided
 * reductions consume chunk pairs).
 *
 * It plays three roles in the repository:
 *  - it *is* the "Halide LLVM back end" baseline of Figure 6
 *    (simple SIMD selection, no complex non-SIMD or cross-lane
 *    instructions beyond what a conventional lowering would use);
 *  - it is the fallback Hydride uses when synthesis fails or times
 *    out for a window;
 *  - the production-Halide-style backend builds on it, adding
 *    hand-written pattern rules in front (see halide_backend.h).
 *
 * Instruction choice is by *observational* lookup: for each needed
 * (operation, element width, lane count) the expander scans the
 * dictionary's target variants and picks the cheapest one whose
 * semantics match a reference implementation on random probes. This
 * keeps the expander fully ISA-agnostic — it works unchanged for any
 * ISA whose manual was ingested, which is the retargetability story
 * of the paper applied to the baseline compiler itself.
 */
#ifndef HYDRIDE_CODEGEN_MACRO_EXPAND_H
#define HYDRIDE_CODEGEN_MACRO_EXPAND_H

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "codegen/lowering.h"
#include "halide/hexpr.h"

namespace hydride {

/** Restrictions that model weaker baseline compilers. */
struct ExpanderOptions
{
    /**
     * Only use instructions whose name passes this filter (empty =
     * all). The Rake-comparison backend restricts to the subset of
     * HVX/ARM instructions Rake supports.
     */
    std::function<bool(const std::string &inst_name)> allow;
    /**
     * Rotate the result-register splice by this many positions — a
     * seeded defect (`hydride-verify --mutate splice-shift`) that the
     * symbolic EQ03 rule must catch. 0 in production.
     */
    int splice_skew = 0;
};

/** Expansion outcome. */
struct ExpandResult
{
    bool ok = false;
    TargetProgram program;
    std::string error;
};

/** Chunk-splitting instruction selector for one target ISA. */
class MacroExpander
{
  public:
    MacroExpander(const AutoLLVMDict &dict, std::string isa,
                  int vector_bits, ExpanderOptions options = {});

    /** Lower one Halide window into a target program. */
    ExpandResult expand(const HExprPtr &window);

    const AutoLLVMDict &dict() const { return dict_; }
    const std::string &isa() const { return isa_; }

  private:
    struct Chunk
    {
        ValueRef ref;
        int width = 0;
    };
    struct Chunked
    {
        int elem_width = 0;
        std::vector<Chunk> chunks;
    };

    /** The internal op vocabulary looked up observationally. */
    enum class MOp {
        Add, Sub, Mul, MinS, MaxS, MinU, MaxU,
        SatAddS, SatAddU, SatSubS, SatSubU,
        AvgU, AbsS, MulHi,
        ShlImm, AShrImm, LShrImm,
        CastWidenS, CastWidenU,
        Narrow1Trunc, Narrow1SatS, Narrow1SatU,
        NarrowPair2Trunc, NarrowPair2SatS, NarrowPair2SatU,
        /// Reversed-operand pack forms (HVX vpack takes Vv low):
        NarrowPair2TruncRev, NarrowPair2SatSRev, NarrowPair2SatURev,
        PairAdd,   ///< hadd/vpadd block-pairwise add.
        DealPair,  ///< HVX vdeal: evens then odds of (b:a) pair.
        PairLo, PairHi, ///< Pair/half extraction.
        ConcatHalves,
    };

    struct PickKey
    {
        MOp op;
        int ew;
        int in_width;
        bool operator<(const PickKey &other) const
        {
            return std::tie(op, ew, in_width) <
                   std::tie(other.op, other.ew, other.in_width);
        }
    };

    /** A resolved instruction choice. */
    struct Pick
    {
        AutoOpVariant variant;
        std::string name;
        int latency = 1;
        int out_width = 0;
        bool takes_imm = false;
    };

    std::optional<Pick> lookup(MOp op, int ew, int in_width);
    BitVector reference(MOp op, const std::vector<BitVector> &args, int ew,
                        int64_t imm) const;
    int refArity(MOp op) const;

    Chunked lower(const HExprPtr &expr);
    Chunked lowerUncached(const HExprPtr &expr);
    Chunked widenChunks(const Chunked &in, int ew, bool sign);
    Chunked lowerNarrow(const Chunked &in, int ew, MOp one, MOp pair2);
    Chunked lowerReduce2(const Chunked &in, int ew);
    ValueRef emit(const Pick &pick, std::vector<ValueRef> args,
                  std::vector<int64_t> imms);
    ValueRef emitOp(MOp op, int ew, std::vector<Chunk> args,
                    int64_t imm, bool &ok);
    ValueRef constChunk(int64_t value, int ew, int lanes);
    Chunked fail(const std::string &message);

    const AutoLLVMDict &dict_;
    std::string isa_;
    int vector_bits_;
    ExpanderOptions options_;
    std::map<PickKey, std::optional<Pick>> pick_cache_;

    // Per-expansion state.
    TargetProgram program_;
    std::string error_;
    bool ok_ = true;
    /** CSE memo: shared HExpr nodes lower once (like LLVM's CSE). */
    std::map<const HExpr *, Chunked> cse_;
};

} // namespace hydride

#endif // HYDRIDE_CODEGEN_MACRO_EXPAND_H
