/**
 * @file
 * Quickstart: the whole Hydride pipeline on a handful of
 * instructions.
 *
 * This walks the paper's workflow end to end on a small scale:
 *  1. take vendor pseudocode for a few instructions from three ISAs,
 *  2. parse and canonicalize them into Hydride IR,
 *  3. run the similarity checking engine to form equivalence classes,
 *  4. build the AutoLLVM dictionary and emit its TableGen,
 *  5. synthesize target code for a tiny Halide expression and lower
 *     it 1-1 to target instructions.
 */
#include <iostream>

#include "autollvm/tablegen.h"
#include "hir/canonicalize.h"
#include "hir/printer.h"
#include "specs/spec_db.h"
#include "synthesis/compiler.h"

using namespace hydride;

int
main()
{
    std::cout << "== 1. Vendor pseudocode (three dialects) ==\n\n";
    std::vector<CanonicalSemantics> insts;
    for (const auto &[isa, name] :
         std::vector<std::pair<std::string, std::string>>{
             {"x86", "_mm256_adds_epi16"},
             {"x86", "_mm512_adds_epi8"},
             {"hvx", "vaddh_sat_128B"},
             {"arm", "vqaddq_s16"},
             {"x86", "_mm256_mullo_epi16"},
             {"arm", "vmulq_s16"}}) {
        for (const auto &inst : isaManual(isa).insts) {
            if (inst.name != name)
                continue;
            std::cout << inst.pseudocode << "\n";
            SpecFunction fn = parseInst(isa, inst);
            CanonicalizeResult canon = canonicalize(fn);
            insts.push_back(canon.sem);
        }
    }

    std::cout << "== 2. Canonicalized Hydride IR (two-level loop nest) "
                 "==\n\n";
    std::cout << printSemantics(insts[0]) << "\n";

    std::cout << "== 3. Equivalence classes ==\n\n";
    SimilarityStats stats;
    auto classes = runSimilarityEngine(insts, {}, &stats);
    std::cout << insts.size() << " instructions -> " << classes.size()
              << " classes (" << stats.structural_merges
              << " structural merges)\n\n";
    for (const auto &cls : classes) {
        std::cout << "class with " << cls.members.size() << " members:";
        for (const auto &member : cls.members)
            std::cout << " " << member.name << "[" << member.isa << "]";
        std::cout << "\n";
    }

    std::cout << "\n== 4. AutoLLVM dictionary + TableGen ==\n\n";
    AutoLLVMDict dict(std::move(classes));
    std::cout << emitTableGen(dict);

    std::cout << "== 5. Synthesis + 1-1 lowering ==\n\n";
    for (const auto &[isa, lanes] :
         std::vector<std::pair<const char *, int>>{{"x86", 16},
                                                   {"arm", 8}}) {
        // Halide expression: saturating add of two i16 vectors, at
        // the target's vectorization width.
        HExprPtr window =
            hBin(HOp::SatAddS, hInput(0, 16, lanes), hInput(1, 16, lanes));
        std::cout << isa << " Halide IR: " << printHalide(window) << "\n";
        SynthesisResult synth = synthesizeWindow(dict, isa, window);
        if (!synth.ok) {
            std::cout << isa << ": synthesis failed (" << synth.note
                      << ")\n";
            continue;
        }
        std::cout << isa << " AutoLLVM IR (cost " << synth.cost << "):\n"
                  << synth.module.print(dict);
        LoweringResult lowered = lowerToTarget(synth.module, dict, isa);
        std::cout << isa << " lowered:\n" << lowered.program.print()
                  << "\n";
    }
    return 0;
}
