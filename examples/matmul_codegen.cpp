/**
 * @file
 * Example: compiling the paper's flagship matrix-multiply window on
 * all three targets, comparing Hydride's synthesized code against the
 * production-Halide-style and LLVM-style baselines (the Table 3
 * experience as a library user sees it).
 */
#include <iostream>

#include "backends/simulator.h"
#include "backends/targets.h"
#include "specs/spec_db.h"
#include "support/strings.h"

using namespace hydride;

int
main()
{
    AutoLLVMDict dict = AutoLLVMDict::build({"x86", "hvx", "arm"});

    for (const auto &target : evaluationTargets()) {
        std::cout << "==== " << target.name << " ====\n";
        Schedule schedule;
        schedule.vector_bits = target.vector_bits;
        Kernel kernel = buildKernel("matmul_b1", schedule);
        std::cout << "Halide IR window:\n  "
                  << printHalide(kernel.windows[0]) << "\n\n";

        SynthesisOptions options;
        HydrideBackend hydride(dict, target.isa, target.vector_bits,
                               options);
        LlvmStyleBackend llvm(dict, target.isa, target.vector_bits);
        HalideProdBackend prod(dict, target.isa, target.vector_bits);

        CompiledKernel ch;
        CompiledKernel cl;
        CompiledKernel cp;
        const bool oh = hydride.compile(kernel, ch);
        const bool ol = llvm.compile(kernel, cl);
        const bool op = prod.compile(kernel, cp);

        if (oh) {
            std::cout << "Hydride (cost " << ch.staticCost() << ", "
                      << (validateCompiled(dict, ch, kernel) ? "verified"
                                                             : "WRONG")
                      << "):\n"
                      << ch.programs[0].print() << "\n";
        }
        if (op) {
            std::cout << "Production-Halide-style (cost "
                      << cp.staticCost() << "):\n"
                      << cp.programs[0].print() << "\n";
        }
        if (ol) {
            std::cout << "LLVM-style (cost " << cl.staticCost() << "):\n"
                      << cl.programs[0].print() << "\n";
        }
        if (oh && ol) {
            std::cout << format(
                "Simulated speedup of Hydride: %.2fx vs llvm-style, "
                "%.2fx vs halide-prod\n\n",
                simulateCycles(cl, kernel, target.sim) /
                    simulateCycles(ch, kernel, target.sim),
                simulateCycles(cp, kernel, target.sim) /
                    simulateCycles(ch, kernel, target.sim));
        }
    }
    return 0;
}
