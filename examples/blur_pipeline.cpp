/**
 * @file
 * Example: an image-processing pipeline (gaussian 5x5) compiled for
 * HVX with Hydride and *executed* through the compiled target
 * programs on real pixel data — demonstrating that the generated
 * instruction sequences are not just cheap but correct on an actual
 * workload (a synthetic gradient image with an impulse).
 */
#include <iostream>

#include "backends/simulator.h"
#include "backends/targets.h"
#include "specs/spec_db.h"
#include "support/strings.h"

using namespace hydride;

namespace {

/** Pack a row of u8 pixels into a vector register value. */
BitVector
packPixels(const std::vector<uint8_t> &pixels, int offset, int lanes)
{
    BitVector out(8 * lanes);
    for (int lane = 0; lane < lanes; ++lane)
        out.setSlice(lane * 8,
                     BitVector::fromUint(8, pixels[offset + lane]));
    return out;
}

} // namespace

int
main()
{
    const TargetDesc target = evaluationTargets()[1]; // HVX
    std::cout << "Compiling gaussian5x5 for " << target.name << "\n\n";

    AutoLLVMDict dict = AutoLLVMDict::build({"x86", "hvx", "arm"});
    Schedule schedule;
    schedule.vector_bits = target.vector_bits;
    Kernel kernel = buildKernel("gaussian5x5", schedule);

    SynthesisOptions options;
    // Keep windows whole in this walkthrough so program 0 is exactly
    // the kernel's row window.
    options.window_depth = 16;
    HydrideBackend hydride(dict, target.isa, target.vector_bits, options);
    CompiledKernel compiled;
    if (!hydride.compile(kernel, compiled)) {
        std::cout << "compilation failed\n";
        return 1;
    }
    std::cout << "Compiled " << compiled.programs.size()
              << " window pieces, total cost " << compiled.staticCost()
              << ", "
              << (validateCompiled(dict, compiled, kernel) ? "verified"
                                                           : "WRONG")
              << "\n\n";
    for (size_t p = 0; p < compiled.programs.size(); ++p) {
        std::cout << "piece " << p << ":\n"
                  << compiled.programs[p].print() << "\n";
    }

    // Execute the row window on synthetic pixels: a gradient with an
    // impulse in the middle, blurred by the 5-tap weighted row sum.
    const int lanes = target.vector_bits / 8;
    std::vector<uint8_t> row(lanes + 8, 0);
    for (size_t x = 0; x < row.size(); ++x)
        row[x] = static_cast<uint8_t>(x % 32);
    row[lanes / 2] = 255;

    const TargetProgram &row_program = compiled.programs[0];
    std::vector<BitVector> inputs;
    for (size_t tap = 0; tap < row_program.input_widths.size(); ++tap)
        inputs.push_back(
            packPixels(row, static_cast<int>(tap), lanes));
    BitVector blurred = row_program.evaluate(dict, inputs);

    std::cout << "input pixels around the impulse:  ";
    for (int x = lanes / 2 - 4; x < lanes / 2 + 5; ++x)
        std::cout << format("%4d", row[x]);
    std::cout << "\nrow-summed (16-bit, w=1:4:6:4:1): ";
    for (int x = lanes / 2 - 4; x < lanes / 2 + 5; ++x)
        std::cout << format("%5d", static_cast<int>(
                                       blurred.extract(x * 16, 16)
                                           .toUint64()));
    std::cout << "\n\nThe impulse spreads across neighbours with the "
                 "binomial weights - the compiled HVX code computes the "
                 "blur.\n";

    std::cout << format("\nSimulated kernel runtime: %.0f cycles\n",
                        simulateCycles(compiled, kernel, target.sim));
    return 0;
}
