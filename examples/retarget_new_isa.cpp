/**
 * @file
 * Example: retargeting Hydride to a brand-new ISA (the paper's §6.1
 * case study, where ARM support was added in three months by one
 * newcomer — here it takes a page of vendor pseudocode).
 *
 * We invent "VDSP", a fictional DSP vector ISA whose vendor publishes
 * an Intel-style manual (so the x86 dialect parser ingests it). The
 * pipeline then runs unmodified: parse -> canonicalize -> similarity
 * against the existing ISAs -> extended AutoLLVM dictionary ->
 * synthesis retargets a Halide kernel to VDSP, including its
 * exotic accumulating dot-product instruction.
 */
#include <iostream>

#include "codegen/lowering.h"
#include "hir/canonicalize.h"
#include "specs/spec_db.h"
#include "specs/x86_parser.h"
#include "support/strings.h"
#include "synthesis/compiler.h"

using namespace hydride;

namespace {

/** The fictional vendor's manual: 384-bit vectors, a handful of
 *  instructions, one fused dot-product-accumulate. */
IsaSpec
vdspManual()
{
    IsaSpec spec;
    spec.isa = "vdsp";
    auto inst = [&](const std::string &name, const std::string &text) {
        spec.insts.push_back({name, text});
    };
    // Element-wise i16 ops on 384-bit registers (24 lanes).
    for (const auto &[stem, expr] :
         std::vector<std::pair<std::string, std::string>>{
             {"vdsp_add_h", "a[i+15:i] + b[i+15:i]"},
             {"vdsp_sub_h", "a[i+15:i] - b[i+15:i]"},
             {"vdsp_mul_h", "a[i+15:i] * b[i+15:i]"},
             {"vdsp_max_h", "MAX(a[i+15:i], b[i+15:i])"},
             {"vdsp_adds_h",
              "Saturate(SignExtend(a[i+15:i], 17) + "
              "SignExtend(b[i+15:i], 17), 16)"}}) {
        std::string text = format(
            "DEFINE %s(a: bit[384], b: bit[384]) -> bit[384] LAT 1\n"
            "FOR j := 0 to 23\ni := j*16\ndst[i+15:i] := %s\nENDFOR\n"
            "ENDDEF\n",
            stem.c_str(), expr.c_str());
        inst(stem, text);
    }
    // The fused dot-product accumulate (like dpwssd / vdmpy).
    inst("vdsp_dotacc_w",
         "DEFINE vdsp_dotacc_w(acc: bit[384], a: bit[384], b: bit[384]) "
         "-> bit[384] LAT 3\n"
         "FOR j := 0 to 11\ni := j*32\n"
         "dst[i+31:i] := acc[i+31:i] + SignExtend(a[i+15:i], 32) * "
         "SignExtend(b[i+15:i], 32) + SignExtend(a[i+31:i+16], 32) * "
         "SignExtend(b[i+31:i+16], 32)\nENDFOR\nENDDEF\n");
    return spec;
}

} // namespace

int
main()
{
    std::cout << "== Step 1: the new vendor's manual ==\n\n";
    IsaSpec manual = vdspManual();
    std::cout << manual.insts.back().pseudocode << "\n";

    std::cout << "== Step 2: parse + canonicalize (unchanged pipeline) "
                 "==\n\n";
    std::vector<CanonicalSemantics> vdsp_sema;
    for (const auto &inst : manual.insts) {
        InstDef def = inst;
        SpecFunction fn = parseX86Inst(def);
        fn.isa = "vdsp";
        CanonicalizeResult canon = canonicalize(fn);
        if (!canon.ok) {
            std::cout << inst.name << ": " << canon.error << "\n";
            return 1;
        }
        vdsp_sema.push_back(canon.sem);
    }
    std::cout << manual.insts.size()
              << " VDSP instructions canonicalized.\n\n";

    std::cout << "== Step 3: similarity against x86 + HVX + ARM ==\n\n";
    std::vector<CanonicalSemantics> all =
        combinedSemantics({"x86", "hvx", "arm"});
    const size_t before =
        runSimilarityEngine(all).size();
    all.insert(all.end(), vdsp_sema.begin(), vdsp_sema.end());
    auto classes = runSimilarityEngine(all);
    std::cout << "classes before VDSP: " << before
              << ", after adding " << vdsp_sema.size()
              << " VDSP instructions: " << classes.size() << "\n";
    for (const auto &cls : classes) {
        const ClassMember *vdsp_member = nullptr;
        for (const auto &member : cls.members)
            if (member.isa == "vdsp")
                vdsp_member = &member;
        if (!vdsp_member || cls.members.size() < 2)
            continue;
        std::cout << "  " << vdsp_member->name << " joined a class of "
                  << cls.members.size() << " (e.g.";
        int shown = 0;
        for (const auto &member : cls.members) {
            if (member.isa != "vdsp" && shown < 3) {
                std::cout << " " << member.name << "[" << member.isa
                          << "]";
                ++shown;
            }
        }
        std::cout << ")\n";
    }

    std::cout << "\n== Step 4: synthesize a Halide kernel for VDSP ==\n\n";
    AutoLLVMDict dict(std::move(classes));
    Schedule schedule;
    schedule.vector_bits = 384;
    Kernel kernel = buildKernel("matmul_b1", schedule);
    SynthesisResult synth =
        synthesizeWindow(dict, "vdsp", kernel.windows[0]);
    if (!synth.ok) {
        std::cout << "synthesis failed: " << synth.note << "\n";
        return 1;
    }
    std::cout << "AutoLLVM IR (cost " << synth.cost << "):\n"
              << synth.module.print(dict) << "\n";
    LoweringResult lowered = lowerToTarget(synth.module, dict, "vdsp");
    std::cout << "VDSP code:\n" << lowered.program.print();
    std::cout << "\nA new ISA became a working Hydride target with one "
                 "page of pseudocode and zero compiler changes.\n";
    return 0;
}
